// Package deploy assembles the paper's full production topology (figures 5
// and 6): a master database in Nagano, log-shipping replication to each
// geographic complex (optionally chained, as Schaumburg fanned out to
// Columbus and Bethesda), and inside every complex its own replica
// database, object dependence graph, DUP engine, trigger monitor, fragment
// renderers, serving nodes, and Network Dispatcher — all fronted by MSIRP
// routing.
//
// Where internal/sim approximates the plant with one engine for speed and
// determinism, a Deployment runs the real asynchronous pipeline: results
// committed at the master flow through replication delay, land on each
// replica's change feed, and each complex's trigger monitor independently
// regenerates and redistributes its own pages. This is the component a
// downstream user would actually deploy; cmd/olympicsd and the
// examples/globalgames example run on it.
//
// Deployment follows the uniform component lifecycle: New constructs the
// entire topology cold, Start(ctx) brings up replication and the trigger
// monitors, Shutdown(ctx) drains them. Started monitors are supervised:
// if one crashes (organically or via an injected fault), the deployment
// restarts it from its LastLSN checkpoint, and the replacement replays the
// replica's retained log from there — the paper's trigger-monitor restart
// story, with the "no committed transaction is ever dropped" invariant
// made testable.
package deploy

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"dupserve/internal/audit"
	"dupserve/internal/cache"
	"dupserve/internal/cluster"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/dispatch"
	"dupserve/internal/fault"
	"dupserve/internal/fragment"
	"dupserve/internal/httpserver"
	"dupserve/internal/lifecycle"
	"dupserve/internal/obs"
	"dupserve/internal/odg"
	"dupserve/internal/overload"
	"dupserve/internal/recovery"
	"dupserve/internal/routing"
	"dupserve/internal/site"
	"dupserve/internal/stats"
	"dupserve/internal/trace"
	"dupserve/internal/trigger"
)

// ComplexSpec describes one geographic serving site.
type ComplexSpec struct {
	Name          string
	Frames        int
	NodesPerFrame int
	// ReplicationDelay models the WAN between this complex and its feed.
	ReplicationDelay time.Duration
	// ChainFrom names another complex whose replica feeds this one
	// (Columbus and Bethesda chained from Schaumburg). Empty = master.
	ChainFrom string
	// Distance is the backbone cost from each client region.
	Distance map[routing.Region]int
}

// Config describes a deployment.
type Config struct {
	Spec site.Spec
	// Complexes in wiring order: a chained complex must appear after its
	// feed.
	Complexes []ComplexSpec
	// BatchWindow for each trigger monitor (default 10ms).
	BatchWindow time.Duration
	// PrimaryCost/SecondaryCost for MSIRP advertisements (default 10/20).
	PrimaryCost   int
	SecondaryCost int
	// RenderWorkers regenerates affected pages concurrently within each
	// complex's DUP engine (the paper's 8-way SMP). 0/1 = sequential.
	RenderWorkers int
	// Policy selects each engine's remedy for obsolete objects (default
	// PolicyUpdateInPlace). Overload scenarios use PolicyInvalidate so cache
	// misses — and therefore the admission limiter — actually see traffic.
	Policy core.Policy
	// MaxPending caps each trigger monitor's coalesced backlog (the
	// backpressure high-water mark). 0 = the monitor's default.
	MaxPending int
	// RenderCost, when set, runs before every page render — a knob for
	// modelling per-page generation work (e.g. httpserver.SpinOverhead).
	// The overload scenario spins here so a request flood actually
	// contends for render slots.
	RenderCost func()
}

// NaganoConfig returns the paper's four-complex layout with chained US
// east-coast replication, at reduced per-complex node counts.
func NaganoConfig(spec site.Spec) Config {
	return Config{
		Spec: spec,
		Complexes: []ComplexSpec{
			{Name: "tokyo", Frames: 1, NodesPerFrame: 2, ReplicationDelay: 5 * time.Millisecond,
				Distance: map[routing.Region]int{routing.RegionJapan: 10, routing.RegionAsia: 20, routing.RegionUS: 80, routing.RegionEurope: 90, routing.RegionOther: 60}},
			{Name: "schaumburg", Frames: 1, NodesPerFrame: 2, ReplicationDelay: 15 * time.Millisecond,
				Distance: map[routing.Region]int{routing.RegionUS: 10, routing.RegionEurope: 50, routing.RegionJapan: 80, routing.RegionAsia: 70, routing.RegionOther: 50}},
			{Name: "columbus", Frames: 1, NodesPerFrame: 2, ReplicationDelay: 5 * time.Millisecond, ChainFrom: "schaumburg",
				Distance: map[routing.Region]int{routing.RegionUS: 10, routing.RegionEurope: 50, routing.RegionJapan: 90, routing.RegionAsia: 80, routing.RegionOther: 50}},
			{Name: "bethesda", Frames: 1, NodesPerFrame: 2, ReplicationDelay: 5 * time.Millisecond, ChainFrom: "schaumburg",
				Distance: map[routing.Region]int{routing.RegionUS: 10, routing.RegionEurope: 48, routing.RegionJapan: 90, routing.RegionAsia: 80, routing.RegionOther: 50}},
		},
	}
}

// Complex is one deployed serving site with its full local pipeline.
type Complex struct {
	Name string
	// Link names this complex's inbound replication link
	// ("master->tokyo"); fault injectors partition links by this name.
	Link       string
	Replica    *db.DB
	Replicator *db.Replicator // nil until the deployment is started
	Graph      *odg.Graph
	Engine     *core.Engine
	Site       *site.Site
	Cluster    *cluster.Complex
	// Tracer records end-to-end propagation traces for this complex when
	// the deployment was built WithTracing; nil otherwise. It survives
	// monitor restarts, so freshness history spans crashes.
	Tracer *trace.Tracer
	// Auditor samples this complex's served responses and shadow-renders
	// them against the replica when the deployment was built WithAudit;
	// nil otherwise.
	Auditor *audit.Auditor
	// Obs is this complex's observability suite — serve-span collector,
	// event journal, flight recorder — when the deployment was built
	// WithObservability; nil otherwise.
	Obs *obs.Suite
	// Recovery accumulates the complex's recovery_* metrics (warmups, pages
	// restored, replayed LSNs, readmissions, flap quarantines) when the
	// deployment was built WithRecovery; nil otherwise.
	Recovery *recovery.Metrics

	spec ComplexSpec
	feed *db.DB

	mu         sync.Mutex
	mon        *trigger.Monitor
	generation int
	restarts   stats.Counter
}

// Monitor returns the complex's current trigger monitor (nil before the
// deployment is started). The instance changes when supervision restarts a
// crashed monitor, so callers should re-fetch rather than hold it.
func (cx *Complex) Monitor() *trigger.Monitor {
	cx.mu.Lock()
	defer cx.mu.Unlock()
	return cx.mon
}

// MonitorRestarts returns how many times supervision has restarted this
// complex's trigger monitor.
func (cx *Complex) MonitorRestarts() int64 { return cx.restarts.Value() }

// lateStore defers the cache-group binding so the engine can be built
// before the cluster that owns the caches.
type lateStore struct {
	mu sync.RWMutex
	g  *cache.Group
}

func (s *lateStore) set(g *cache.Group) {
	s.mu.Lock()
	s.g = g
	s.mu.Unlock()
}

func (s *lateStore) group() *cache.Group {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g
}

func (s *lateStore) ApplyPut(obj *cache.Object) {
	if g := s.group(); g != nil {
		g.ApplyPut(obj)
	}
}

func (s *lateStore) ApplyInvalidate(key cache.Key) int {
	if g := s.group(); g != nil {
		return g.ApplyInvalidate(key)
	}
	return 0
}

func (s *lateStore) ApplyInvalidatePrefix(prefix string) int {
	if g := s.group(); g != nil {
		return g.ApplyInvalidatePrefix(prefix)
	}
	return 0
}

// Deployment is the assembled system. New builds it cold; Start brings up
// replication, trigger monitors, and monitor supervision.
type Deployment struct {
	Master *db.DB
	// MasterSite is the write-side site bound to the master database:
	// RecordResult, PublishNews and SetCurrentDay go through it.
	MasterSite *site.Site
	Router     *routing.Router

	complexes map[string]*Complex
	order     []string

	batchWindow time.Duration
	maxPending  int
	inj         *fault.Injector
	retry       *cache.RetryPolicy
	tracing     bool
	tracingSLO  time.Duration
	overload    *overload.Config
	staleBudget time.Duration
	audit       bool
	obsEnabled  bool
	obsOpts     []obs.Option
	recovery    *recovery.Policy

	lifeMu   sync.Mutex
	started  bool
	stopping bool
	baseCtx  context.Context

	restarts stats.Counter // monitor restarts across all complexes
}

// Option configures a Deployment at construction time.
type Option func(*Deployment)

// WithFaults threads a fault injector through every layer of the
// deployment: per-node push failures in each complex's cache group, render
// faults in each engine's generator, crash hooks on every trigger monitor
// (supervision restarts them from checkpoint), and partition checks on
// every replication link (named by Complex.Link).
func WithFaults(inj *fault.Injector) Option {
	return func(d *Deployment) { d.inj = inj }
}

// WithRetryPolicy sets the push retry/backoff policy of every complex's
// cache group (how hard broadcasts fight a failing node before downgrading
// the push to an invalidation).
func WithRetryPolicy(p cache.RetryPolicy) Option {
	return func(d *Deployment) { d.retry = &p }
}

// WithTracing gives every complex a propagation tracer with the given
// freshness SLO (the paper's number is 60s; chaos tests use a tight one).
// Tracers persist across monitor restarts.
func WithTracing(slo time.Duration) Option {
	return func(d *Deployment) { d.tracing = true; d.tracingSLO = slo }
}

// WithOverload arms overload control on every serving node: each node gets
// its OWN admission limiter built from cfg (a limiter is per-node state),
// and every node cache retains invalidated entries so a shedding node can
// degrade to a stale-but-bounded copy no older than staleBudget instead of
// refusing outright. staleBudget <= 0 disables the stale fallback: shed
// requests fail over or 503 immediately.
func WithOverload(cfg overload.Config, staleBudget time.Duration) Option {
	return func(d *Deployment) { d.overload = &cfg; d.staleBudget = staleBudget }
}

// WithObservability gives every complex an obs.Suite: the dispatcher mints
// a serve span per request and the serving node stamps stage boundaries;
// state transitions across the pipeline (trigger crashes and replays, cache
// push downgrades, overload shed flips, routing withdrawals, audit
// incoherence, freshness-SLO violations) land in the complex's journal as
// typed events; and the flight recorder snapshots spans, propagation
// traces, and events into a black-box dump whenever a trigger condition
// fires. opts (clock, ring sizes, shed-burst threshold) apply to every
// complex's suite.
func WithObservability(opts ...obs.Option) Option {
	return func(d *Deployment) { d.obsEnabled = true; d.obsOpts = opts }
}

// WithRecovery arms the node-recovery protocol on every complex. Each
// serving node gets a recovery.Warmer: its Fail detaches the node's cache
// from the broadcast group (a dead machine receives no pushes), and its
// Recover rebuilds the cache to a pinned LSN floor — healthy peers' copies
// first, floor renders as fallback, retained-log replay past the pin —
// before the node reports ready. The complex's dispatcher runs the
// probation state machine from p (probe hysteresis, slow-start ramp, flap
// damping), node lifecycle lands in the journal as node/down, node/warmup,
// node/readmitted and node/flap_quarantine events (the last trips the
// flight recorder), and recovery_* metrics accumulate per complex.
func WithRecovery(p recovery.Policy) Option {
	return func(d *Deployment) { d.recovery = &p }
}

// WithAudit gives every complex a consistency auditor: served responses
// are sampled via a response tap on every node, and Auditor.Sweep shadow-
// renders them against the complex's replica at a pinned LSN, classifying
// divergence and diffing observed reads against declared ODG edges. The
// auditor inherits the deployment's freshness SLO (WithTracing) and stale
// budget (WithOverload) when those are configured.
func WithAudit() Option {
	return func(d *Deployment) { d.audit = true }
}

// New assembles a deployment cold: databases, graphs, engines, clusters,
// routing. Nothing moves until Start. Call Prime before serving, and
// Shutdown to drain.
func New(cfg Config, opts ...Option) (*Deployment, error) {
	if len(cfg.Complexes) == 0 {
		return nil, errors.New("deploy: no complexes configured")
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 10 * time.Millisecond
	}
	if cfg.PrimaryCost == 0 {
		cfg.PrimaryCost = 10
	}
	if cfg.SecondaryCost == 0 {
		cfg.SecondaryCost = 20
	}

	d := &Deployment{
		Master:      db.New("master"),
		Router:      routing.NewRouter(routing.NumAddresses),
		complexes:   make(map[string]*Complex),
		batchWindow: cfg.BatchWindow,
		maxPending:  cfg.MaxPending,
	}
	for _, o := range opts {
		o(d)
	}
	masterSite, err := site.Build(cfg.Spec, d.Master, nil)
	if err != nil {
		return nil, err
	}
	d.MasterSite = masterSite

	for _, cs := range cfg.Complexes {
		feed := d.Master
		feedName := "master"
		if cs.ChainFrom != "" {
			up, ok := d.complexes[cs.ChainFrom]
			if !ok {
				return nil, fmt.Errorf("deploy: %s chains from unknown complex %q", cs.Name, cs.ChainFrom)
			}
			feed = up.Replica
			feedName = cs.ChainFrom
		}
		cx, err := d.newComplex(cs, cfg, feed, feedName)
		if err != nil {
			return nil, err
		}
		d.complexes[cs.Name] = cx
		d.order = append(d.order, cs.Name)
		d.Router.AddComplex(cs.Name, cx.Cluster, cs.Distance)
	}
	if err := d.Router.AdvertiseSpread(d.order, cfg.PrimaryCost, cfg.SecondaryCost); err != nil {
		return nil, err
	}
	if d.obsEnabled {
		// MSIRP withdrawal steps land in the affected complex's journal.
		d.Router.OnShedChange(func(complexName string, withdrawn, prev int) {
			cx, ok := d.complexes[complexName]
			if !ok || cx.Obs == nil {
				return
			}
			kind, level := "withdraw", obs.LevelWarn
			if withdrawn < prev {
				kind, level = "restore", obs.LevelInfo
			}
			cx.Obs.Journal.Event(level, "routing", kind,
				"load advisor changed the complex's advertised address set",
				"complex", complexName,
				"withdrawn", strconv.Itoa(withdrawn),
				"prev", strconv.Itoa(prev))
		})
	}
	return d, nil
}

func (d *Deployment) newComplex(cs ComplexSpec, cfg Config, feed *db.DB, feedName string) (*Complex, error) {
	replica := db.New(cs.Name)
	graph := odg.New()
	store := &lateStore{}

	var csite *site.Site
	gen := core.Generator(func(key cache.Key, version int64) (*cache.Object, error) {
		return csite.Engine.Generate(key, version)
	})
	if cfg.RenderCost != nil {
		base := gen
		gen = func(key cache.Key, version int64) (*cache.Object, error) {
			cfg.RenderCost()
			return base(key, version)
		}
	}
	if d.inj != nil {
		gen = d.inj.Generator(cs.Name, gen)
	}
	opts := []core.Option{core.WithGenerator(gen)}
	if cfg.RenderWorkers > 1 {
		opts = append(opts, core.WithParallelism(cfg.RenderWorkers))
	}
	if cfg.Policy != core.PolicyUpdateInPlace {
		opts = append(opts, core.WithPolicy(cfg.Policy))
	}
	engine := core.NewEngine(graph, store, opts...)
	var err error
	csite, err = site.BuildReplica(cfg.Spec, replica, engine)
	if err != nil {
		return nil, err
	}
	// Incremental propagation: the engine's update-in-place path renders
	// each changed fragment once per batch and rebuilds containing pages by
	// splicing the fragment engine's cached bytes. The binding is late
	// because the site (and its fragment engine) is built around the
	// engine's registrar.
	engine.SetAssembler(csite.Engine)
	var groupOpts []cache.GroupOption
	if d.inj != nil {
		groupOpts = append(groupOpts, cache.WithPutHook(d.inj.PushHook(cs.Name)))
	}
	if d.retry != nil {
		groupOpts = append(groupOpts, cache.WithRetryPolicy(*d.retry))
	}
	// Tracer, observability suite, and auditor exist before the cluster so
	// node options can close over them.
	var tracer *trace.Tracer
	if d.tracing {
		var topts []trace.Option
		if d.tracingSLO > 0 {
			topts = append(topts, trace.WithSLO(d.tracingSLO))
		}
		tracer = trace.New(topts...)
	}
	var suite *obs.Suite
	if d.obsEnabled {
		sopts := []obs.Option{obs.WithName(cs.Name), obs.WithTracer(tracer)}
		suite = obs.NewSuite(append(sopts, d.obsOpts...)...)
		journal := suite.Journal
		// Freshness-SLO violations become journal events (and a flight-
		// recorder trigger). Attrs carry identity only — never durations,
		// and never the trace ID, which comes from a process-wide counter
		// and would break dump byte-reproducibility; the LSN correlates.
		if tracer != nil {
			tracer.SetOnViolation(func(tr trace.Trace) {
				journal.Event(obs.LevelWarn, "trace", "slo_violation",
					"propagation exceeded the freshness SLO",
					"lsn", strconv.FormatInt(tr.LSN, 10))
			})
		}
		// Push downgrades: a broadcast that exhausted its retries against a
		// node and fell back to invalidation.
		groupOpts = append(groupOpts, cache.WithDowngradeHook(func(node string, key cache.Key) {
			journal.Event(obs.LevelWarn, "cache", "push_downgrade",
				"cache push exhausted retries; downgraded to invalidation",
				"node", node, "page", string(key))
		}))
	}
	var auditor *audit.Auditor
	if d.audit {
		spec := cfg.Spec
		acfg := audit.Config{
			Name:    cs.Name,
			Replica: replica,
			Build: func(sdb *db.DB, reg fragment.Registrar) (*fragment.Engine, []string, error) {
				s, err := site.BuildReplica(spec, sdb, reg)
				if err != nil {
					return nil, nil, err
				}
				return s.Engine, s.Pages(), nil
			},
			Indexer:     csite.Indexer,
			Tracer:      tracer,
			StaleBudget: d.staleBudget,
			SLO:         d.tracingSLO,
		}
		if suite != nil {
			journal := suite.Journal
			acfg.OnIncoherent = func(page string) {
				journal.Event(obs.LevelError, "audit", "incoherent",
					"served page diverges from shadow render at the same LSN",
					"page", page)
			}
		}
		auditor = audit.New(acfg)
	}

	clCfg := cluster.Config{
		Name:          cs.Name,
		Frames:        cs.Frames,
		NodesPerFrame: cs.NodesPerFrame,
		Generator:     gen,
		Version:       replica.LSN,
		Statics:       csite.Statics(),
		GroupOptions:  groupOpts,
	}
	var nodeOptFns []func(string) []httpserver.Option
	if suite != nil {
		// The dispatcher mints a serve span per request; the nodes count
		// their render-time database reads through a probe on the replica.
		clCfg.DispatcherOptions = append(clCfg.DispatcherOptions,
			dispatch.WithObserver(suite.Collector))
		probe := obs.NewReadProbe()
		replica.SetReadHook(probe.Hook)
		nodeOptFns = append(nodeOptFns, func(string) []httpserver.Option {
			return []httpserver.Option{httpserver.WithReadProbe(probe)}
		})
	}
	if d.overload != nil {
		ocfg, budget := *d.overload, d.staleBudget
		if budget > 0 {
			clCfg.CacheOptions = []cache.Option{cache.WithStaleRetention()}
		}
		nodeOptFns = append(nodeOptFns, func(name string) []httpserver.Option {
			// Each node gets its own limiter (a limiter is per-node state)
			// and, under observability, its own shed-transition journal hook.
			ncfg := ocfg
			if suite != nil {
				journal := suite.Journal
				ncfg.OnShedChange = func(shedding bool) {
					if shedding {
						journal.Event(obs.LevelWarn, "overload", "shed_start",
							"admission queue delay crossed the target; node is shedding",
							"node", name)
					} else {
						journal.Event(obs.LevelInfo, "overload", "shed_stop",
							"admission queue delay recovered; node stopped shedding",
							"node", name)
					}
				}
			}
			return []httpserver.Option{httpserver.WithOverload(overload.NewLimiter(ncfg), budget)}
		})
	}
	if auditor != nil {
		nodeOptFns = append(nodeOptFns, func(string) []httpserver.Option {
			return []httpserver.Option{httpserver.WithResponseTap(auditor.Observe)}
		})
	}
	var recMetrics *recovery.Metrics
	if d.recovery != nil {
		recMetrics = recovery.NewMetrics()
		p := *d.recovery
		metrics := recMetrics
		clCfg.DispatcherOptions = append(clCfg.DispatcherOptions,
			dispatch.WithHealthPolicy(dispatch.HealthPolicy{
				FailThreshold:    p.FailThreshold,
				ReadmitThreshold: p.ReadmitThreshold,
				RampStart:        p.RampStart,
				RampFactor:       p.RampFactor,
				FlapWindow:       p.FlapWindow,
				QuarantineBase:   p.QuarantineBase,
				QuarantineMax:    p.QuarantineMax,
			}),
			// Probation-machine transitions feed the recovery metrics and,
			// under observability, the journal: node/down on eviction (plus
			// node/flap_quarantine when damping trips — a flight-recorder
			// trigger), node/readmitted when a node re-enters the list.
			dispatch.WithStateChange(func(ch dispatch.StateChange) {
				switch {
				case ch.To == dispatch.StateDown:
					if ch.Flapped {
						metrics.FlapQuarantines.Inc()
					}
					if suite != nil {
						suite.Journal.Event(obs.LevelWarn, "node", "down",
							"dispatcher evicted the node from the distribution list",
							"node", ch.Node, "cause", ch.Cause)
						if ch.Flapped {
							suite.Journal.Event(obs.LevelError, "node", "flap_quarantine",
								"repeated fail/recover cycles; readmission quarantined",
								"node", ch.Node,
								"flaps", strconv.Itoa(ch.Flaps),
								"quarantine", strconv.Itoa(ch.Quarantine))
						}
					}
				case ch.From == dispatch.StateDown:
					metrics.Readmissions.Inc()
					if suite != nil {
						suite.Journal.Event(obs.LevelInfo, "node", "readmitted",
							"node readmitted to the distribution list",
							"node", ch.Node, "state", ch.To.String())
					}
				}
			}))
	}
	if len(nodeOptFns) > 0 {
		fns := nodeOptFns
		clCfg.NodeOptions = func(name string) []httpserver.Option {
			var opts []httpserver.Option
			for _, fn := range fns {
				opts = append(opts, fn(name)...)
			}
			return opts
		}
	}
	cl := cluster.NewComplex(clCfg)
	store.set(cl.Caches)

	if d.recovery != nil {
		p := *d.recovery
		group := cl.Caches
		// affectedPages maps a replayed transaction to the pages it
		// obsoletes: index each change into the ODG and keep the affected
		// node IDs that are pages.
		pageSet := make(map[string]bool)
		for _, pg := range csite.Pages() {
			pageSet[pg] = true
		}
		affectedPages := func(tx db.Transaction) []string {
			var ids []odg.NodeID
			for _, ch := range tx.Changes {
				ids = append(ids, csite.Indexer(ch)...)
			}
			var out []string
			for _, id := range graph.Affected(ids...) {
				if pageSet[string(id)] {
					out = append(out, string(id))
				}
			}
			return out
		}
		for _, node := range cl.Nodes() {
			node := node
			c, ok := group.Get(node.Name())
			if !ok {
				continue
			}
			warmer := recovery.New(recovery.Config{
				Node:  node.Name(),
				Cache: c,
				Cold:  !p.Warm,
				Peers: func() []*cache.Cache {
					var out []*cache.Cache
					for _, pc := range group.Members() {
						if pc != c {
							out = append(out, pc)
						}
					}
					return out
				},
				Pages: csite.Pages,
				Render: func(path string, version int64) (*cache.Object, error) {
					return csite.Engine.Generate(cache.Key(path), version)
				},
				CurrentLSN:    replica.LSN,
				LogSince:      replica.LogSince,
				AffectedPages: affectedPages,
				Attach:        func() { group.Add(c) },
				Metrics:       recMetrics,
			})
			node.SetWarmup(func() error {
				rep, err := warmer.Warm()
				if err != nil {
					if suite != nil {
						suite.Journal.Event(obs.LevelError, "node", "warmup_failed",
							err.Error(), "node", node.Name())
					}
					return err
				}
				if suite != nil {
					suite.Journal.Event(obs.LevelInfo, "node", "warmup",
						"cache rebuilt to the pinned LSN floor before readmission",
						"node", rep.Node,
						"pages", strconv.Itoa(rep.Pages),
						"from_peer", strconv.Itoa(rep.FromPeer),
						"rendered", strconv.Itoa(rep.Rendered),
						"floor_lsn", strconv.FormatInt(rep.FloorLSN, 10))
				}
				return nil
			})
			// A dead machine receives no pushes: detach the cache from the
			// broadcast group on failure. The warmup's Attach reverses it.
			node.SetStateHook(func(name string, from, to cluster.NodeState) {
				if to == cluster.NodeDown {
					group.Remove(name)
				}
			})
		}
	}

	cx := &Complex{
		Name:     cs.Name,
		Link:     feedName + "->" + cs.Name,
		Replica:  replica,
		Graph:    graph,
		Engine:   engine,
		Site:     csite,
		Cluster:  cl,
		Tracer:   tracer,
		Auditor:  auditor,
		Obs:      suite,
		Recovery: recMetrics,
		spec:     cs,
		feed:     feed,
	}
	return cx, nil
}

// Start brings the deployment up: replication begins shipping (with
// fault-injection partition checks when configured), and every complex's
// trigger monitor starts and is supervised — a crashed monitor is
// restarted from its LastLSN checkpoint. Cancelling ctx initiates the same
// orderly drain as Shutdown.
func (d *Deployment) Start(ctx context.Context) error {
	d.lifeMu.Lock()
	if d.started {
		d.lifeMu.Unlock()
		return errors.New("deploy: already started")
	}
	d.started = true
	if ctx == nil {
		ctx = context.Background()
	}
	d.baseCtx = ctx
	d.lifeMu.Unlock()

	for _, name := range d.order {
		cx := d.complexes[name]
		replOpts := []db.ReplOption{db.WithDelay(cx.spec.ReplicationDelay)}
		if d.inj != nil {
			replOpts = append(replOpts, db.WithPartitionCheck(d.inj.PartitionCheck(cx.Link)))
		}
		cx.Replicator = db.StartReplication(cx.feed, cx.Replica, replOpts...)
		// The render engine is a lifecycle.Component like the monitor that
		// drives it: start it before the monitor so propagation never races
		// a half-supervised renderer, stop it after (see Shutdown).
		var renderer lifecycle.Component = cx.Site.Engine
		if err := renderer.Start(ctx); err != nil {
			_ = d.Shutdown(context.Background())
			return err
		}
		if err := d.startMonitor(cx, 0); err != nil {
			_ = d.Shutdown(context.Background())
			return err
		}
	}
	if ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			_ = d.Shutdown(context.Background())
		}()
	}
	return nil
}

// startMonitor launches generation gen of cx's trigger monitor, resuming
// from the previous generation's checkpoint.
func (d *Deployment) startMonitor(cx *Complex, gen int) error {
	cx.mu.Lock()
	var checkpoint int64
	if cx.mon != nil {
		checkpoint = cx.mon.Checkpoint()
	}
	cx.mu.Unlock()

	opts := []trigger.Option{
		trigger.WithIndexer(cx.Site.Indexer),
		trigger.WithBatchWindow(d.batchWindow),
	}
	if d.maxPending > 0 {
		opts = append(opts, trigger.WithMaxPending(d.maxPending))
	}
	if cx.Tracer != nil {
		opts = append(opts, trigger.WithTracer(cx.Tracer))
	}
	if cx.Obs != nil {
		journal := cx.Obs.Journal
		opts = append(opts, trigger.WithOnReplay(func(count int, upto int64) {
			journal.Event(obs.LevelInfo, "trigger", "replay",
				"restarted monitor replayed retained log from checkpoint",
				"count", strconv.Itoa(count),
				"upto_lsn", strconv.FormatInt(upto, 10))
		}))
	}
	if cx.Obs != nil || d.inj != nil {
		journal, inj := cx.Obs, d.inj
		opts = append(opts, trigger.WithOnCrash(func(err error) {
			if journal != nil {
				journal.Journal.Event(obs.LevelError, "trigger", "crash", err.Error(),
					"complex", cx.Name, "generation", strconv.Itoa(gen))
			}
			if inj != nil {
				d.superviseRestart(cx)
			}
		}))
	}
	if d.inj != nil {
		opts = append(opts, trigger.WithCrashHook(d.inj.CrashHook(cx.Name, gen)))
	}
	mon := trigger.New(trigger.Config{
		Name:     cx.Name,
		DB:       cx.Replica,
		Engine:   cx.Engine,
		StartLSN: checkpoint,
	}, opts...)
	if err := mon.Start(d.baseCtx); err != nil {
		return err
	}
	cx.mu.Lock()
	cx.mon = mon
	cx.generation = gen
	cx.mu.Unlock()
	return nil
}

// superviseRestart replaces a crashed monitor with a fresh generation
// started from the crashed one's checkpoint. Runs on the dying monitor's
// goroutine, after it has fully stopped.
func (d *Deployment) superviseRestart(cx *Complex) {
	d.lifeMu.Lock()
	stopping := d.stopping
	d.lifeMu.Unlock()
	if stopping {
		return
	}
	cx.restarts.Inc()
	d.restarts.Inc()
	cx.mu.Lock()
	gen := cx.generation + 1
	cx.mu.Unlock()
	// Checkpoint replay makes the error unrecoverable only if it repeats
	// every generation; the crash hook folds the generation into the fault
	// identity, so injected crashes do not.
	_ = d.startMonitor(cx, gen)
}

// Shutdown drains the deployment: every trigger monitor finishes its final
// propagation (bounded by ctx), supervision stands down, and replication
// stops. Safe to call more than once and on never-started deployments.
func (d *Deployment) Shutdown(ctx context.Context) error {
	d.lifeMu.Lock()
	d.stopping = true
	d.lifeMu.Unlock()
	var first error
	for _, cx := range d.complexes {
		if mon := cx.Monitor(); mon != nil {
			if err := mon.Shutdown(ctx); err != nil && first == nil {
				first = err
			}
		}
		if err := cx.Site.Engine.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		if cx.Replicator != nil {
			cx.Replicator.Stop()
		}
	}
	return first
}

// MonitorRestarts returns how many monitor restarts supervision has
// performed across all complexes.
func (d *Deployment) MonitorRestarts() int64 { return d.restarts.Value() }

// RegisterMetrics publishes deployment-level recovery metrics — the
// monitor_restarts_total family, labeled per complex — plus each complex's
// audit_* families when the deployment was built WithAudit.
func (d *Deployment) RegisterMetrics(reg *stats.Registry) {
	for _, name := range d.order {
		cx := d.complexes[name]
		reg.RegisterCounter("monitor_restarts_total",
			"trigger monitors restarted from checkpoint by supervision",
			stats.Labels{"complex": name}, &cx.restarts)
		if cx.Auditor != nil {
			cx.Auditor.RegisterMetrics(reg, stats.Labels{"complex": name})
		}
		if cx.Obs != nil {
			cx.Obs.RegisterMetrics(reg, stats.Labels{"complex": name})
		}
		if cx.Recovery != nil {
			cx.Recovery.Register(reg, stats.Labels{"complex": name})
		}
	}
}

// Complex returns a deployed complex by name.
func (d *Deployment) Complex(name string) (*Complex, bool) {
	cx, ok := d.complexes[name]
	return cx, ok
}

// Complexes returns the complexes in wiring order.
func (d *Deployment) Complexes() []*Complex {
	out := make([]*Complex, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.complexes[n])
	}
	return out
}

// Prime waits for every replica to catch up with the master's seed data,
// then pre-renders the full page set into every complex's caches — the
// site-opening warm-up. It must be called before traffic for the paper's
// no-miss behaviour.
func (d *Deployment) Prime(timeout time.Duration) error {
	if !d.WaitFresh(timeout) {
		return errors.New("deploy: replicas did not catch up in time")
	}
	for _, cx := range d.Complexes() {
		group := cx.Cluster.Caches
		if err := cx.Site.PrerenderAll(cx.Replica.LSN(), func(o *cache.Object) {
			group.BroadcastPut(o)
		}); err != nil {
			return fmt.Errorf("deploy: prime %s: %w", cx.Name, err)
		}
		for _, c := range group.Members() {
			c.ResetCounters()
		}
	}
	return nil
}

// WaitFresh blocks until every complex has replicated AND propagated every
// transaction the master had committed at call time, or the timeout
// elapses. It reports whether full freshness was reached — the paper's
// "updated pages ... available to the rest of the world within seconds",
// made observable. Freshness converges even across monitor crashes: the
// supervised replacement replays from checkpoint and catches up.
func (d *Deployment) WaitFresh(timeout time.Duration) bool {
	target := d.Master.LSN()
	deadline := time.Now().Add(timeout)
	for {
		fresh := true
		for _, cx := range d.Complexes() {
			if cx.Replica.LSN() < target {
				fresh = false
				break
			}
			mon := cx.Monitor()
			if mon == nil {
				fresh = false
				break
			}
			mon.Flush()
			if mon.LastLSN() < target {
				fresh = false
				break
			}
		}
		if fresh {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Serve routes one client request through MSIRP to a complex and its
// dispatcher.
func (d *Deployment) Serve(region routing.Region, path string) (*cache.Object, httpserver.Outcome, string, error) {
	return d.Router.Request(region, path)
}

// Stats aggregates cache behaviour across every serving node of every
// complex.
func (d *Deployment) Stats() cache.Stats {
	var agg cache.Stats
	for _, cx := range d.Complexes() {
		s := cx.Cluster.Caches.AggregateStats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Puts += s.Puts
		agg.Updates += s.Updates
		agg.Invalidations += s.Invalidations
		agg.Evictions += s.Evictions
		agg.Items += s.Items
		agg.Bytes += s.Bytes
		agg.PeakBytes += s.PeakBytes
	}
	return agg
}

// AdviseLoad runs one load-advisor sweep, closing the overload loop at the
// routing layer: each complex's aggregate load (the mean of its nodes'
// limiter signals, as seen by the Network Dispatcher) is fed to MSIRP,
// which withdraws advertised addresses in 8 1/3 % steps once the aggregate
// crosses the shed threshold — and re-advertises them as load subsides.
// Returns the per-complex load that was advised, for observability.
func (d *Deployment) AdviseLoad() map[string]float64 {
	loads := make(map[string]float64, len(d.order))
	for _, name := range d.order {
		load := d.complexes[name].Cluster.Dispatcher.LoadSignal()
		loads[name] = load
		_ = d.Router.SetComplexLoad(name, load)
	}
	return loads
}

// FailComplex takes an entire complex offline: every node errors, the
// dispatcher drains, and MSIRP reroutes its traffic to the next-cheapest
// advertisers. Unknown names are ignored.
func (d *Deployment) FailComplex(name string) {
	cx, ok := d.complexes[name]
	if !ok {
		return
	}
	cx.Cluster.FailAll()
	d.Router.SetComplexUp(name, false)
}

// RecoverComplex brings a failed complex back: nodes recover, the router
// re-advertises, and — because the crash discarded the memory-resident
// caches — the complex's own site re-renders and redistributes the full
// page set from its replica, exactly as the trigger-monitor distribution
// path would, so it rejoins warm.
func (d *Deployment) RecoverComplex(name string) error {
	cx, ok := d.complexes[name]
	if !ok {
		return fmt.Errorf("deploy: unknown complex %q", name)
	}
	cx.Cluster.RecoverAll()
	d.Router.SetComplexUp(name, true)
	group := cx.Cluster.Caches
	if err := cx.Site.PrerenderAll(cx.Replica.LSN(), func(o *cache.Object) {
		group.BroadcastPut(o)
	}); err != nil {
		return fmt.Errorf("deploy: rewarm %s: %w", name, err)
	}
	return nil
}
