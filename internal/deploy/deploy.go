// Package deploy assembles the paper's full production topology (figures 5
// and 6): a master database in Nagano, log-shipping replication to each
// geographic complex (optionally chained, as Schaumburg fanned out to
// Columbus and Bethesda), and inside every complex its own replica
// database, object dependence graph, DUP engine, trigger monitor, fragment
// renderers, serving nodes, and Network Dispatcher — all fronted by MSIRP
// routing.
//
// Where internal/sim approximates the plant with one engine for speed and
// determinism, a Deployment runs the real asynchronous pipeline: results
// committed at the master flow through replication delay, land on each
// replica's change feed, and each complex's trigger monitor independently
// regenerates and redistributes its own pages. This is the component a
// downstream user would actually deploy; cmd/olympicsd and the
// examples/globalgames example run on it.
package deploy

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/cluster"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/httpserver"
	"dupserve/internal/odg"
	"dupserve/internal/routing"
	"dupserve/internal/site"
	"dupserve/internal/trigger"
)

// ComplexSpec describes one geographic serving site.
type ComplexSpec struct {
	Name          string
	Frames        int
	NodesPerFrame int
	// ReplicationDelay models the WAN between this complex and its feed.
	ReplicationDelay time.Duration
	// ChainFrom names another complex whose replica feeds this one
	// (Columbus and Bethesda chained from Schaumburg). Empty = master.
	ChainFrom string
	// Distance is the backbone cost from each client region.
	Distance map[routing.Region]int
}

// Config describes a deployment.
type Config struct {
	Spec site.Spec
	// Complexes in wiring order: a chained complex must appear after its
	// feed.
	Complexes []ComplexSpec
	// BatchWindow for each trigger monitor (default 10ms).
	BatchWindow time.Duration
	// PrimaryCost/SecondaryCost for MSIRP advertisements (default 10/20).
	PrimaryCost   int
	SecondaryCost int
	// RenderWorkers regenerates affected pages concurrently within each
	// complex's DUP engine (the paper's 8-way SMP). 0/1 = sequential.
	RenderWorkers int
}

// NaganoConfig returns the paper's four-complex layout with chained US
// east-coast replication, at reduced per-complex node counts.
func NaganoConfig(spec site.Spec) Config {
	return Config{
		Spec: spec,
		Complexes: []ComplexSpec{
			{Name: "tokyo", Frames: 1, NodesPerFrame: 2, ReplicationDelay: 5 * time.Millisecond,
				Distance: map[routing.Region]int{routing.RegionJapan: 10, routing.RegionAsia: 20, routing.RegionUS: 80, routing.RegionEurope: 90, routing.RegionOther: 60}},
			{Name: "schaumburg", Frames: 1, NodesPerFrame: 2, ReplicationDelay: 15 * time.Millisecond,
				Distance: map[routing.Region]int{routing.RegionUS: 10, routing.RegionEurope: 50, routing.RegionJapan: 80, routing.RegionAsia: 70, routing.RegionOther: 50}},
			{Name: "columbus", Frames: 1, NodesPerFrame: 2, ReplicationDelay: 5 * time.Millisecond, ChainFrom: "schaumburg",
				Distance: map[routing.Region]int{routing.RegionUS: 10, routing.RegionEurope: 50, routing.RegionJapan: 90, routing.RegionAsia: 80, routing.RegionOther: 50}},
			{Name: "bethesda", Frames: 1, NodesPerFrame: 2, ReplicationDelay: 5 * time.Millisecond, ChainFrom: "schaumburg",
				Distance: map[routing.Region]int{routing.RegionUS: 10, routing.RegionEurope: 48, routing.RegionJapan: 90, routing.RegionAsia: 80, routing.RegionOther: 50}},
		},
	}
}

// Complex is one deployed serving site with its full local pipeline.
type Complex struct {
	Name       string
	Replica    *db.DB
	Replicator *db.Replicator
	Graph      *odg.Graph
	Engine     *core.Engine
	Monitor    *trigger.Monitor
	Site       *site.Site
	Cluster    *cluster.Complex
}

// lateStore defers the cache-group binding so the engine can be built
// before the cluster that owns the caches.
type lateStore struct {
	mu sync.RWMutex
	g  *cache.Group
}

func (s *lateStore) set(g *cache.Group) {
	s.mu.Lock()
	s.g = g
	s.mu.Unlock()
}

func (s *lateStore) group() *cache.Group {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g
}

func (s *lateStore) ApplyPut(obj *cache.Object) {
	if g := s.group(); g != nil {
		g.BroadcastPut(obj)
	}
}

func (s *lateStore) ApplyInvalidate(key cache.Key) int {
	if g := s.group(); g != nil {
		return g.BroadcastInvalidate(key)
	}
	return 0
}

func (s *lateStore) ApplyInvalidatePrefix(prefix string) int {
	if g := s.group(); g != nil {
		return g.BroadcastInvalidatePrefix(prefix)
	}
	return 0
}

// Deployment is the running system.
type Deployment struct {
	Master *db.DB
	// MasterSite is the write-side site bound to the master database:
	// RecordResult, PublishNews and SetCurrentDay go through it.
	MasterSite *site.Site
	Router     *routing.Router

	complexes map[string]*Complex
	order     []string
}

// New assembles and starts a deployment. Call Prime before serving, and
// Stop to shut down the monitors and replicators.
func New(cfg Config) (*Deployment, error) {
	if len(cfg.Complexes) == 0 {
		return nil, errors.New("deploy: no complexes configured")
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 10 * time.Millisecond
	}
	if cfg.PrimaryCost == 0 {
		cfg.PrimaryCost = 10
	}
	if cfg.SecondaryCost == 0 {
		cfg.SecondaryCost = 20
	}

	d := &Deployment{
		Master:    db.New("master"),
		Router:    routing.NewRouter(routing.NumAddresses),
		complexes: make(map[string]*Complex),
	}
	masterSite, err := site.Build(cfg.Spec, d.Master, nil)
	if err != nil {
		return nil, err
	}
	d.MasterSite = masterSite

	for _, cs := range cfg.Complexes {
		feed := d.Master
		if cs.ChainFrom != "" {
			up, ok := d.complexes[cs.ChainFrom]
			if !ok {
				d.Stop()
				return nil, fmt.Errorf("deploy: %s chains from unknown complex %q", cs.Name, cs.ChainFrom)
			}
			feed = up.Replica
		}
		cx, err := newComplex(cs, cfg, feed)
		if err != nil {
			d.Stop()
			return nil, err
		}
		d.complexes[cs.Name] = cx
		d.order = append(d.order, cs.Name)
		d.Router.AddComplex(cs.Name, cx.Cluster, cs.Distance)
	}
	if err := d.Router.AdvertiseSpread(d.order, cfg.PrimaryCost, cfg.SecondaryCost); err != nil {
		d.Stop()
		return nil, err
	}
	return d, nil
}

func newComplex(cs ComplexSpec, cfg Config, feed *db.DB) (*Complex, error) {
	replica := db.New(cs.Name)
	graph := odg.New()
	store := &lateStore{}

	var csite *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return csite.Engine.Generate(key, version)
	}
	opts := []core.Option{core.WithGenerator(gen)}
	if cfg.RenderWorkers > 1 {
		opts = append(opts, core.WithParallelism(cfg.RenderWorkers))
	}
	engine := core.NewEngine(graph, store, opts...)
	var err error
	csite, err = site.BuildReplica(cfg.Spec, replica, engine)
	if err != nil {
		return nil, err
	}
	cl := cluster.NewComplex(cluster.Config{
		Name:          cs.Name,
		Frames:        cs.Frames,
		NodesPerFrame: cs.NodesPerFrame,
		Generator:     gen,
		Version:       replica.LSN,
		Statics:       csite.Statics(),
	})
	store.set(cl.Caches)

	repl := db.StartReplication(feed, replica, db.WithDelay(cs.ReplicationDelay))
	mon := trigger.Start(replica, engine,
		trigger.WithIndexer(csite.Indexer),
		trigger.WithBatchWindow(cfg.BatchWindow))

	return &Complex{
		Name:       cs.Name,
		Replica:    replica,
		Replicator: repl,
		Graph:      graph,
		Engine:     engine,
		Monitor:    mon,
		Site:       csite,
		Cluster:    cl,
	}, nil
}

// Complex returns a deployed complex by name.
func (d *Deployment) Complex(name string) (*Complex, bool) {
	cx, ok := d.complexes[name]
	return cx, ok
}

// Complexes returns the complexes in wiring order.
func (d *Deployment) Complexes() []*Complex {
	out := make([]*Complex, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.complexes[n])
	}
	return out
}

// Prime waits for every replica to catch up with the master's seed data,
// then pre-renders the full page set into every complex's caches — the
// site-opening warm-up. It must be called before traffic for the paper's
// no-miss behaviour.
func (d *Deployment) Prime(timeout time.Duration) error {
	if !d.WaitFresh(timeout) {
		return errors.New("deploy: replicas did not catch up in time")
	}
	for _, cx := range d.Complexes() {
		group := cx.Cluster.Caches
		if err := cx.Site.PrerenderAll(cx.Replica.LSN(), func(o *cache.Object) {
			group.BroadcastPut(o)
		}); err != nil {
			return fmt.Errorf("deploy: prime %s: %w", cx.Name, err)
		}
		for _, c := range group.Members() {
			c.ResetCounters()
		}
	}
	return nil
}

// WaitFresh blocks until every complex has replicated AND propagated every
// transaction the master had committed at call time, or the timeout
// elapses. It reports whether full freshness was reached — the paper's
// "updated pages ... available to the rest of the world within seconds",
// made observable.
func (d *Deployment) WaitFresh(timeout time.Duration) bool {
	target := d.Master.LSN()
	deadline := time.Now().Add(timeout)
	for {
		fresh := true
		for _, cx := range d.Complexes() {
			if cx.Replica.LSN() < target {
				fresh = false
				break
			}
			cx.Monitor.Flush()
			if cx.Monitor.LastLSN() < target {
				fresh = false
				break
			}
		}
		if fresh {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Serve routes one client request through MSIRP to a complex and its
// dispatcher.
func (d *Deployment) Serve(region routing.Region, path string) (*cache.Object, httpserver.Outcome, string, error) {
	return d.Router.Request(region, path)
}

// Stats aggregates cache behaviour across every serving node of every
// complex.
func (d *Deployment) Stats() cache.Stats {
	var agg cache.Stats
	for _, cx := range d.Complexes() {
		s := cx.Cluster.Caches.AggregateStats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Puts += s.Puts
		agg.Updates += s.Updates
		agg.Invalidations += s.Invalidations
		agg.Evictions += s.Evictions
		agg.Items += s.Items
		agg.Bytes += s.Bytes
		agg.PeakBytes += s.PeakBytes
	}
	return agg
}

// FailComplex takes an entire complex offline: every node errors, the
// dispatcher drains, and MSIRP reroutes its traffic to the next-cheapest
// advertisers. Unknown names are ignored.
func (d *Deployment) FailComplex(name string) {
	cx, ok := d.complexes[name]
	if !ok {
		return
	}
	cx.Cluster.FailAll()
	d.Router.SetComplexUp(name, false)
}

// RecoverComplex brings a failed complex back: nodes recover, the router
// re-advertises, and — because the crash discarded the memory-resident
// caches — the complex's own site re-renders and redistributes the full
// page set from its replica, exactly as the trigger-monitor distribution
// path would, so it rejoins warm.
func (d *Deployment) RecoverComplex(name string) error {
	cx, ok := d.complexes[name]
	if !ok {
		return fmt.Errorf("deploy: unknown complex %q", name)
	}
	cx.Cluster.RecoverAll()
	d.Router.SetComplexUp(name, true)
	group := cx.Cluster.Caches
	if err := cx.Site.PrerenderAll(cx.Replica.LSN(), func(o *cache.Object) {
		group.BroadcastPut(o)
	}); err != nil {
		return fmt.Errorf("deploy: rewarm %s: %w", name, err)
	}
	return nil
}

// Stop shuts down every trigger monitor and replicator. Safe to call more
// than once and on partially constructed deployments.
func (d *Deployment) Stop() {
	for _, cx := range d.complexes {
		if cx.Monitor != nil {
			cx.Monitor.Stop()
		}
		if cx.Replicator != nil {
			cx.Replicator.Stop()
		}
	}
}
