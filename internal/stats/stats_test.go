package stats

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if got := c.Reset(); got != 42 {
		t.Fatalf("Reset returned %d, want 42", got)
	}
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset Value = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestGaugeTracksMax(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Set(5)
	if g.Value() != 5 || g.Max() != 10 {
		t.Fatalf("Value=%d Max=%d, want 5/10", g.Value(), g.Max())
	}
	g.Add(20)
	if g.Value() != 25 || g.Max() != 25 {
		t.Fatalf("Value=%d Max=%d, want 25/25", g.Value(), g.Max())
	}
	g.Add(-30)
	if g.Value() != -5 || g.Max() != 25 {
		t.Fatalf("Value=%d Max=%d, want -5/25", g.Value(), g.Max())
	}
}

func TestGaugeConcurrentMax(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 1; i <= 100; i++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			g.Set(v)
		}(int64(i))
	}
	wg.Wait()
	if g.Max() != 100 {
		t.Fatalf("Max = %d, want 100", g.Max())
	}
}

func TestGaugeConcurrentAddMax(t *testing.T) {
	// Workers each add +1 n times then -1 n times; the peak must equal the
	// moment every +1 had landed, and Max must never lose a raise even when
	// adders race through the shared updateMax CAS loop.
	const workers, per = 8, 1000
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Max() != workers*per {
		t.Fatalf("Max after adds = %d, want %d", g.Max(), workers*per)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("Value after drain = %d, want 0", g.Value())
	}
	if g.Max() != workers*per {
		t.Fatalf("Max after drain = %d, want %d (max must not decay)", g.Max(), workers*per)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	_, counts := h.Buckets()
	want := []int64{2, 1, 1, 1} // <=1: {0.5,1}; <=10: {5}; <=100: {50}; overflow: {500}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(1000)
	h.Observe(2)
	h.Observe(4)
	if got := h.Mean(); math.Abs(got-3) > 1e-6 {
		t.Fatalf("Mean = %g, want 3", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(1, 2)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile on empty = %g, want 0", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8, 16, 32)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Observe(rng.Float64() * 40)
	}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%g v=%g prev=%g", q, v, prev)
		}
		prev = v
	}
}

func TestSummaryPercentiles(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	cases := []struct {
		p, want float64
	}{{0, 1}, {100, 100}, {50, 50.5}}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %g, want 50.5", got)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("Min/Max = %g/%g, want 1/100", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 || s.Stddev() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryStddev(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %g, want 2", got)
	}
}

// Property: Summary.Percentile must agree with a direct sort-based
// computation for the extremes, and be monotone in p.
func TestSummaryPercentileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		var s Summary
		for _, v := range vs {
			s.Observe(v)
		}
		sorted := append([]float64(nil), vs...)
		sort.Float64s(sorted)
		if s.Percentile(0) != sorted[0] || s.Percentile(100) != sorted[len(sorted)-1] {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesClamping(t *testing.T) {
	ts := NewTimeSeries(3)
	ts.Add(-5, 1)
	ts.Add(0, 1)
	ts.Add(2, 3)
	ts.Add(99, 4)
	if got := ts.Slot(0); got != 2 {
		t.Fatalf("Slot(0) = %g, want 2", got)
	}
	if got := ts.Slot(2); got != 7 {
		t.Fatalf("Slot(2) = %g, want 7", got)
	}
	if got := ts.Total(); got != 9 {
		t.Fatalf("Total = %g, want 9", got)
	}
}

func TestTimeSeriesSlotMean(t *testing.T) {
	ts := NewTimeSeries(2)
	ts.Add(1, 10)
	ts.Add(1, 20)
	if got := ts.SlotMean(1); got != 15 {
		t.Fatalf("SlotMean = %g, want 15", got)
	}
	if got := ts.SlotMean(0); got != 0 {
		t.Fatalf("empty SlotMean = %g, want 0", got)
	}
}

func TestTimeSeriesPanicsOnZeroLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTimeSeries(0) did not panic")
		}
	}()
	NewTimeSeries(0)
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 0); got != "n/a" {
		t.Fatalf("Ratio(1,0) = %q", got)
	}
	if got := Ratio(1, 2); got != "50.00%" {
		t.Fatalf("Ratio(1,2) = %q", got)
	}
}

// Property: TimeSeries.Total equals the sum of its slot totals for any
// sequence of adds.
func TestTimeSeriesTotalProperty(t *testing.T) {
	f := func(adds []int16) bool {
		ts := NewTimeSeries(8)
		var want float64
		for i, a := range adds {
			ts.Add(i%11-2, float64(a)) // deliberately out-of-range sometimes
			want += float64(a)
		}
		return math.Abs(ts.Total()-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
