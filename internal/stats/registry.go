package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is the central catalogue of named metrics. Subsystems register
// their existing Counter/Gauge/Histogram instances (or a compute-on-read
// function) under a metric name plus an optional label set, and the
// registry renders everything three ways:
//
//   - Snapshot() — a single structured snapshot for JSON endpoints;
//   - WriteText(w) — Prometheus text exposition for /debug/metrics;
//   - Families() — the raw family list for programmatic consumers.
//
// A metric name identifies a family; each distinct label set within a
// family is one series. All series in a family must have the same type.
// Registration is expected at wiring time (registering a duplicate
// name+label set, or mixing types within a family, panics — it is a
// programming error), while reads are safe for concurrent use with
// ongoing metric updates because the underlying primitives are atomic.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*Family
}

// Labels is a label set attached to one series, e.g.
// {"node": "up3", "class": "result"}.
type Labels map[string]string

// MetricType classifies a registered series.
type MetricType string

// The metric types the registry understands. TypeFunc series are rendered
// as gauges in Prometheus exposition.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
	TypeFunc      MetricType = "func"
)

// Family is one named metric with all of its labeled series.
type Family struct {
	Name string
	Help string
	Type MetricType

	mu     sync.Mutex
	series []*Series
	byKey  map[string]*Series
}

// Series is one (label set, metric) pair within a family.
type Series struct {
	Labels Labels

	key       string // canonical sorted rendering of Labels
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
	fn        func() float64
	cfn       func() int64 // counter-typed compute-on-read (RegisterCounterFunc)
}

// counterValue reads a counter series whether it is backed by a Counter or a
// compute-on-read function.
func (s *Series) counterValue() int64 {
	if s.cfn != nil {
		return s.cfn()
	}
	return s.counter.Value()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// labelEscaper escapes a label value for the Prometheus text exposition
// format, which defines exactly three escapes: backslash, double quote,
// and newline. Go's %q would additionally escape tabs and non-ASCII runes,
// which scrapers do not unescape.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelKey renders labels canonically (sorted by key) for identity and
// exposition: `{a="1",b="2"}`, or "" for an empty set.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// family returns (creating if needed) the named family, enforcing type
// consistency.
func (r *Registry) family(name, help string, typ MetricType) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &Family{Name: name, Help: help, Type: typ, byKey: make(map[string]*Series)}
		r.families[name] = f
		return f
	}
	if f.Type != typ {
		panic(fmt.Sprintf("stats: metric %q registered as %s, re-registered as %s", name, f.Type, typ))
	}
	if f.Help == "" {
		f.Help = help
	}
	return f
}

// add installs a series in the family, panicking on duplicates.
func (f *Family) add(s *Series) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byKey[s.key]; dup {
		panic(fmt.Sprintf("stats: duplicate series %s%s", f.Name, s.key))
	}
	f.byKey[s.key] = s
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
}

func cloneLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	cp := make(Labels, len(l))
	for k, v := range l {
		cp[k] = v
	}
	return cp
}

// RegisterCounter publishes an existing counter under name+labels.
func (r *Registry) RegisterCounter(name, help string, labels Labels, c *Counter) {
	f := r.family(name, help, TypeCounter)
	f.add(&Series{Labels: cloneLabels(labels), key: labelKey(labels), counter: c})
}

// RegisterCounterFunc publishes a compute-on-read value as a counter —
// for subsystems whose monotonic totals are folded from internal shards at
// read time (the striped cache) rather than held in one Counter. The
// function must be monotonically non-decreasing to honour counter
// semantics.
func (r *Registry) RegisterCounterFunc(name, help string, labels Labels, fn func() int64) {
	f := r.family(name, help, TypeCounter)
	f.add(&Series{Labels: cloneLabels(labels), key: labelKey(labels), cfn: fn})
}

// RegisterGauge publishes an existing gauge under name+labels.
func (r *Registry) RegisterGauge(name, help string, labels Labels, g *Gauge) {
	f := r.family(name, help, TypeGauge)
	f.add(&Series{Labels: cloneLabels(labels), key: labelKey(labels), gauge: g})
}

// RegisterHistogram publishes an existing histogram under name+labels.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	f := r.family(name, help, TypeHistogram)
	f.add(&Series{Labels: cloneLabels(labels), key: labelKey(labels), histogram: h})
}

// RegisterFunc publishes a compute-on-read value (rendered as a gauge) —
// the thin-adapter hook for subsystems whose snapshots are derived, like a
// cache group's aggregate hit rate or the database's current LSN.
func (r *Registry) RegisterFunc(name, help string, labels Labels, fn func() float64) {
	f := r.family(name, help, TypeFunc)
	f.add(&Series{Labels: cloneLabels(labels), key: labelKey(labels), fn: fn})
}

// GetOrCreateCounter returns the counter registered under name+labels,
// creating and registering a fresh one on first use. It lets hot paths own
// the metric while wiring code names it.
func (r *Registry) GetOrCreateCounter(name, help string, labels Labels) *Counter {
	f := r.family(name, help, TypeCounter)
	key := labelKey(labels)
	f.mu.Lock()
	if s, ok := f.byKey[key]; ok {
		f.mu.Unlock()
		return s.counter
	}
	f.mu.Unlock()
	c := &Counter{}
	f.add(&Series{Labels: cloneLabels(labels), key: key, counter: c})
	return c
}

// GetOrCreateHistogram returns the histogram registered under name+labels,
// creating one with the given bounds on first use.
func (r *Registry) GetOrCreateHistogram(name, help string, labels Labels, bounds ...float64) *Histogram {
	f := r.family(name, help, TypeHistogram)
	key := labelKey(labels)
	f.mu.Lock()
	if s, ok := f.byKey[key]; ok {
		f.mu.Unlock()
		return s.histogram
	}
	f.mu.Unlock()
	h := NewHistogram(bounds...)
	f.add(&Series{Labels: cloneLabels(labels), key: key, histogram: h})
	return h
}

// Families returns the registered families sorted by name.
func (r *Registry) Families() []*Family {
	r.mu.RLock()
	out := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SeriesSnapshot is the point-in-time state of one series.
type SeriesSnapshot struct {
	Labels Labels  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
	// Histogram-only fields.
	Count  int64     `json:"count,omitempty"`
	Mean   float64   `json:"mean,omitempty"`
	P50    float64   `json:"p50,omitempty"`
	P95    float64   `json:"p95,omitempty"`
	P99    float64   `json:"p99,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
}

// FamilySnapshot is the point-in-time state of one family.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   MetricType       `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures every registered metric at once — the single surface
// that replaces the per-subsystem ad-hoc snapshot structs.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams := r.Families()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.Name, Help: f.Help, Type: f.Type}
		f.mu.Lock()
		series := append([]*Series(nil), f.series...)
		f.mu.Unlock()
		for _, s := range series {
			ss := SeriesSnapshot{Labels: s.Labels}
			switch f.Type {
			case TypeCounter:
				ss.Value = float64(s.counterValue())
			case TypeGauge:
				ss.Value = float64(s.gauge.Value())
			case TypeFunc:
				ss.Value = s.fn()
			case TypeHistogram:
				h := s.histogram
				ss.Count = h.Count()
				ss.Mean = h.Mean()
				ss.P50 = h.Quantile(0.50)
				ss.P95 = h.Quantile(0.95)
				ss.P99 = h.Quantile(0.99)
				ss.Bounds, ss.Counts = h.Buckets()
				ss.Value = ss.Mean
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// WriteText renders the registry in Prometheus text exposition format
// (histograms with cumulative le buckets, _sum and _count), so a scrape of
// /debug/metrics works with standard tooling.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.Families() {
		typ := string(f.Type)
		if f.Type == TypeFunc {
			typ = string(TypeGauge)
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, typ); err != nil {
			return err
		}
		f.mu.Lock()
		series := append([]*Series(nil), f.series...)
		f.mu.Unlock()
		for _, s := range series {
			var err error
			switch f.Type {
			case TypeCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.Name, s.key, s.counterValue())
			case TypeGauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.Name, s.key, s.gauge.Value())
			case TypeFunc:
				_, err = fmt.Fprintf(w, "%s%s %g\n", f.Name, s.key, s.fn())
			case TypeHistogram:
				err = writeHistogramText(w, f.Name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogramText renders one histogram series with cumulative buckets.
func writeHistogramText(w io.Writer, name string, s *Series) error {
	bounds, counts := s.histogram.Buckets()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.key, fmt.Sprintf("%g", b)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.key, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, s.key, s.histogram.Mean()*float64(s.histogram.Count())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.key, cum)
	return err
}

// withLE splices an le label into a rendered label key.
func withLE(key, le string) string {
	if key == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return key[:len(key)-1] + fmt.Sprintf(",le=%q}", le)
}
