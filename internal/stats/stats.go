// Package stats provides the lightweight metric primitives used throughout
// dupserve: atomic counters, fixed-bucket histograms, daily/hourly time
// series, and streaming mean/percentile summaries.
//
// Everything in this package is safe for concurrent use and allocation-free
// on the hot paths (Counter.Add, Histogram.Observe), because the serving and
// trigger pipelines record metrics on every request and every propagation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero and returns the previous value.
func (c *Counter) Reset() int64 { return c.v.Swap(0) }

// Gauge is an atomically updated instantaneous value that also tracks the
// maximum it has ever reached (used, e.g., for peak cache memory).
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v and updates the running maximum.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.updateMax(v)
}

// Add adjusts the gauge by delta (which may be negative) and updates the
// running maximum.
func (g *Gauge) Add(delta int64) {
	g.updateMax(g.v.Add(delta))
}

// updateMax raises the running maximum to v with a CAS loop; concurrent
// raisers may interleave, so losing the CAS means re-checking against the
// new maximum rather than giving up.
func (g *Gauge) updateMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the maximum value ever set.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Reset zeroes both the current value and the running maximum.
func (g *Gauge) Reset() {
	g.v.Store(0)
	g.max.Store(0)
}

// Histogram is a fixed-boundary histogram. Boundaries are upper bounds of
// each bucket; observations greater than the last boundary land in the
// overflow bucket. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    atomic.Int64   // sum in micro-units to keep it integral
	n      atomic.Int64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. It panics if bounds is empty or not strictly ascending, because a
// malformed histogram is a programming error, not a runtime condition.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: NewHistogram requires at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records a single observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(int64(v * 1e6))
	h.n.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Mean returns the arithmetic mean of all observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / 1e6 / float64(n)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket. Values in the overflow bucket
// are reported as the last boundary.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank || i == len(h.counts)-1 {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns a copy of the bucket upper bounds and counts (the final
// count is the overflow bucket and has no bound).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Summary accumulates observations and reports exact mean, min, max, and
// percentiles. Unlike Histogram it stores every observation, so it is meant
// for bounded result sets (per-day response samples, bench outputs), not
// unbounded hot paths.
type Summary struct {
	mu sync.Mutex
	vs []float64
	st bool // sorted
}

// Observe records one observation.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.vs = append(s.vs, v)
	s.st = false
	s.mu.Unlock()
}

// Count returns the number of observations.
func (s *Summary) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vs)
}

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vs) == 0 {
		return 0
	}
	var t float64
	for _, v := range s.vs {
		t += v
	}
	return t / float64(len(s.vs))
}

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vs) == 0 {
		return 0
	}
	s.sortLocked()
	return s.vs[0]
}

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vs) == 0 {
		return 0
	}
	s.sortLocked()
	return s.vs[len(s.vs)-1]
}

// Percentile returns the p-th percentile (0-100) using nearest-rank with
// linear interpolation, or 0 if empty.
func (s *Summary) Percentile(p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.vs)
	if n == 0 {
		return 0
	}
	s.sortLocked()
	if p <= 0 {
		return s.vs[0]
	}
	if p >= 100 {
		return s.vs[n-1]
	}
	r := p / 100 * float64(n-1)
	lo := int(math.Floor(r))
	hi := int(math.Ceil(r))
	if lo == hi {
		return s.vs[lo]
	}
	frac := r - float64(lo)
	// Convex combination rather than lo + frac*(hi-lo): the subtraction can
	// overflow for extreme values while the combination stays in [lo, hi].
	return s.vs[lo]*(1-frac) + s.vs[hi]*frac
}

// Stddev returns the population standard deviation, or 0 if fewer than two
// observations exist.
func (s *Summary) Stddev() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.vs)
	if n < 2 {
		return 0
	}
	var t float64
	for _, v := range s.vs {
		t += v
	}
	mean := t / float64(n)
	var ss float64
	for _, v := range s.vs {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Summary) sortLocked() {
	if !s.st {
		sort.Float64s(s.vs)
		s.st = true
	}
}

// TimeSeries accumulates values into fixed-width integer slots (hours of a
// day, days of an event, ...). Slot indices outside [0, n) are clamped,
// because simulation edges (e.g. a request in the final minute spilling into
// slot n) should accumulate at the boundary rather than vanish.
type TimeSeries struct {
	mu    sync.Mutex
	slots []float64
	ns    []int64
}

// NewTimeSeries returns a series with n slots.
func NewTimeSeries(n int) *TimeSeries {
	if n <= 0 {
		panic("stats: NewTimeSeries requires n > 0")
	}
	return &TimeSeries{slots: make([]float64, n), ns: make([]int64, n)}
}

// Add accumulates v into slot i.
func (t *TimeSeries) Add(i int, v float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i = t.clamp(i)
	t.slots[i] += v
	t.ns[i]++
}

// Slot returns the accumulated total for slot i.
func (t *TimeSeries) Slot(i int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slots[t.clamp(i)]
}

// SlotMean returns the mean observation in slot i, or 0 when empty.
func (t *TimeSeries) SlotMean(i int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	i = t.clamp(i)
	if t.ns[i] == 0 {
		return 0
	}
	return t.slots[i] / float64(t.ns[i])
}

// Len returns the number of slots.
func (t *TimeSeries) Len() int { return len(t.slots) }

// Totals returns a copy of all slot totals.
func (t *TimeSeries) Totals() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.slots))
	copy(out, t.slots)
	return out
}

// Total returns the sum across all slots.
func (t *TimeSeries) Total() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s float64
	for _, v := range t.slots {
		s += v
	}
	return s
}

func (t *TimeSeries) clamp(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(t.slots) {
		return len(t.slots) - 1
	}
	return i
}

// Ratio formats a hit ratio-like fraction as a percentage string, guarding
// the zero-denominator case.
func Ratio(num, den int64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(num)/float64(den))
}
