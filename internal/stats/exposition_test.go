package stats

import (
	"strings"
	"testing"
)

// TestExpositionEscapesLabelValues checks label values against the
// Prometheus text-format escaping rules: backslash, double quote, and
// newline are escaped; everything else (tabs, non-ASCII) passes through
// verbatim. Go's %q semantics would over-escape the latter two.
func TestExpositionEscapesLabelValues(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string // rendered label pair in the exposition
	}{
		{"quote", `say "hi"`, `v="say \"hi\""`},
		{"backslash", `c:\tmp\x`, `v="c:\\tmp\\x"`},
		{"newline", "line1\nline2", `v="line1\nline2"`},
		{"mixed", "a\\\"\nb", `v="a\\\"\nb"`},
		{"tab_verbatim", "a\tb", "v=\"a\tb\""},
		{"unicode_verbatim", "東京", `v="東京"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			var c Counter
			c.Inc()
			reg.RegisterCounter("m_total", "", Labels{"v": tc.value}, &c)
			var b strings.Builder
			if err := reg.WriteText(&b); err != nil {
				t.Fatal(err)
			}
			got := b.String()
			wantLine := "m_total{" + tc.want + "} 1\n"
			if !strings.Contains(got, wantLine) {
				t.Errorf("value %q: exposition\n%s\nwant line %q", tc.value, got, wantLine)
			}
		})
	}
}

// TestExpositionEscapedValuesStayDistinct ensures escaping does not fold
// two different raw values onto one series key: a value containing a
// literal backslash-n must not collide with one containing a newline.
func TestExpositionEscapedValuesStayDistinct(t *testing.T) {
	reg := NewRegistry()
	var a, b Counter
	reg.RegisterCounter("m_total", "", Labels{"v": "x\ny"}, &a)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("distinct values collided: %v", r)
		}
	}()
	reg.RegisterCounter("m_total", "", Labels{"v": `x\ny`}, &b)
}

// TestExpositionDeterministicOrder registers families and series in a
// scrambled order and checks the exposition is sorted — families by name,
// series within a family by canonical label key — and identical across
// writes, so scrapes diff cleanly.
func TestExpositionDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	var c1, c2, c3, c4 Counter
	reg.RegisterCounter("zeta_total", "last family", nil, &c1)
	reg.RegisterCounter("alpha_total", "first family", Labels{"node": "up2"}, &c2)
	reg.RegisterCounter("alpha_total", "", Labels{"node": "up0"}, &c3)
	reg.RegisterCounter("mid_total", "middle family", nil, &c4)

	var w1 strings.Builder
	if err := reg.WriteText(&w1); err != nil {
		t.Fatal(err)
	}
	first := w1.String()

	za := strings.Index(first, "zeta_total")
	al := strings.Index(first, "alpha_total")
	mi := strings.Index(first, "mid_total")
	if !(al < mi && mi < za) {
		t.Errorf("families not sorted by name:\n%s", first)
	}
	up0 := strings.Index(first, `alpha_total{node="up0"}`)
	up2 := strings.Index(first, `alpha_total{node="up2"}`)
	if up0 < 0 || up2 < 0 || up0 > up2 {
		t.Errorf("series not sorted by label key:\n%s", first)
	}

	var w2 strings.Builder
	if err := reg.WriteText(&w2); err != nil {
		t.Fatal(err)
	}
	if first != w2.String() {
		t.Error("two writes of the same registry differ")
	}
}
