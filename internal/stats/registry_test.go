package stats

import (
	"strings"
	"testing"
)

func TestRegistryCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	var c Counter
	var g Gauge
	r.RegisterCounter("requests_total", "total requests", Labels{"node": "up0"}, &c)
	r.RegisterGauge("cache_bytes", "cache size", nil, &g)
	c.Add(3)
	g.Set(42)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d, want 2", len(snap))
	}
	// Families come back sorted by name.
	if snap[0].Name != "cache_bytes" || snap[1].Name != "requests_total" {
		t.Fatalf("unexpected family order: %q, %q", snap[0].Name, snap[1].Name)
	}
	if snap[0].Series[0].Value != 42 {
		t.Fatalf("gauge value = %v, want 42", snap[0].Series[0].Value)
	}
	if snap[1].Series[0].Value != 3 {
		t.Fatalf("counter value = %v, want 3", snap[1].Series[0].Value)
	}
	if snap[1].Series[0].Labels["node"] != "up0" {
		t.Fatalf("labels lost: %v", snap[1].Series[0].Labels)
	}
}

func TestRegistryLabeledFamily(t *testing.T) {
	r := NewRegistry()
	for _, node := range []string{"up1", "up0", "up2"} {
		var c Counter
		r.RegisterCounter("hits_total", "", Labels{"node": node}, &c)
	}
	fams := r.Families()
	if len(fams) != 1 {
		t.Fatalf("families = %d, want 1", len(fams))
	}
	snap := r.Snapshot()
	if len(snap[0].Series) != 3 {
		t.Fatalf("series = %d, want 3", len(snap[0].Series))
	}
	// Series are sorted by canonical label key.
	for i, want := range []string{"up0", "up1", "up2"} {
		if got := snap[0].Series[i].Labels["node"]; got != want {
			t.Fatalf("series %d node = %q, want %q", i, got, want)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var a, b Counter
	r.RegisterCounter("x", "", Labels{"n": "1"}, &a)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.RegisterCounter("x", "", Labels{"n": "1"}, &b)
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	var c Counter
	var g Gauge
	r.RegisterCounter("x", "", nil, &c)
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict did not panic")
		}
	}()
	r.RegisterGauge("x", "", Labels{"n": "2"}, &g)
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.GetOrCreateCounter("ops_total", "", Labels{"op": "put"})
	c2 := r.GetOrCreateCounter("ops_total", "", Labels{"op": "put"})
	if c1 != c2 {
		t.Fatal("GetOrCreateCounter returned distinct counters for same series")
	}
	c3 := r.GetOrCreateCounter("ops_total", "", Labels{"op": "del"})
	if c1 == c3 {
		t.Fatal("distinct labels shared a counter")
	}
	h1 := r.GetOrCreateHistogram("lat", "", nil, 0.1, 1, 10)
	h2 := r.GetOrCreateHistogram("lat", "", nil, 0.1, 1, 10)
	if h1 != h2 {
		t.Fatal("GetOrCreateHistogram returned distinct histograms for same series")
	}
}

func TestRegistryFuncMetric(t *testing.T) {
	r := NewRegistry()
	v := 0.25
	r.RegisterFunc("hit_rate", "aggregate hit rate", nil, func() float64 { return v })
	if got := r.Snapshot()[0].Series[0].Value; got != 0.25 {
		t.Fatalf("func value = %v, want 0.25", got)
	}
	v = 0.75
	if got := r.Snapshot()[0].Series[0].Value; got != 0.75 {
		t.Fatalf("func value after change = %v, want 0.75 (must compute on read)", got)
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	r.RegisterCounter("reqs_total", "requests", Labels{"node": "up0"}, &c)
	h := r.GetOrCreateHistogram("lat_seconds", "latency", nil, 1, 10)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	r.RegisterFunc("up", "", nil, func() float64 { return 1 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total requests",
		"# TYPE reqs_total counter",
		`reqs_total{node="up0"} 7`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="10"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
		"# TYPE up gauge",
		"up 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryHistogramSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.GetOrCreateHistogram("d", "", nil, 1, 2, 4, 8)
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	s := r.Snapshot()[0].Series[0]
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50 < 1 || s.P50 > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", s.P50)
	}
	if len(s.Bounds) != 4 || len(s.Counts) != 5 {
		t.Fatalf("bounds/counts lens = %d/%d, want 4/5", len(s.Bounds), len(s.Counts))
	}
}
