// Package obs is the serve-side observability layer: per-request serve
// spans, a structured event journal, and an anomaly flight recorder.
//
// PR 1 made the *propagation* path observable (internal/trace follows every
// transaction commit -> cdc -> batch -> dup -> render -> push). This package
// does the same for the *read* path. A ServeTrace is minted by the dispatcher
// for each request and threaded through the serving node via context; the
// node stamps stage boundaries (route selection, cache lookup, admission
// wait, render, stale fallback) and records what the response actually
// reflected — outcome, serving node, observed LSN, and database reads — so
// every served page can be correlated back to the propagation trace that
// produced its content. Recording mirrors internal/trace's hot path: value
// types, preallocated ring storage, lock-free histograms, zero allocation
// per request.
//
// The Journal replaces silent state changes with typed events: trigger
// crashes and replays, cache push downgrades, overload shed transitions,
// routing address withdrawals, audit incoherence. Subsystems stay free of
// obs imports — deploy wires their existing callback seams into the journal.
//
// The Recorder is the black box: it subscribes to the journal and, when a
// trigger condition fires (monitor crash, freshness-SLO violation, shed
// burst, audit-incoherent page), snapshots the last N serve spans,
// propagation traces, and journal events into a self-contained Dump.
// Dump.Canonical projects away timestamps so a dump taken under a seeded,
// sequenced scenario is byte-for-byte reproducible (see chaos.RunFlight).
package obs

import (
	"time"

	"dupserve/internal/stats"
	"dupserve/internal/trace"
)

// config collects the knobs shared by the suite's components.
type config struct {
	name        string
	clock       func() time.Time
	tracer      *trace.Tracer
	reg         *stats.Registry
	spanRing    int
	journalRing int
	dumpRing    int
	shedBurst   int
}

func defaultConfig() config {
	return config{
		clock:       time.Now,
		spanRing:    256,
		journalRing: 256,
		dumpRing:    16,
		shedBurst:   1,
	}
}

// Option configures a Suite (and the individual component constructors,
// which read the fields relevant to them).
type Option func(*config)

// WithName labels the suite (typically the complex name); it appears in
// every dump.
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// WithClock substitutes the time source for spans, journal events, and
// dumps. Deterministic scenarios inject a logical clock here.
func WithClock(now func() time.Time) Option {
	return func(c *config) {
		if now != nil {
			c.clock = now
		}
	}
}

// WithTracer attaches the complex's propagation tracer so dumps carry the
// recent propagation traces alongside serve spans.
func WithTracer(t *trace.Tracer) Option {
	return func(c *config) { c.tracer = t }
}

// WithMetrics attaches a registry whose Snapshot is embedded in every dump.
// Without it, dumps omit the metrics section (deterministic scenarios rely
// on that — metric values are timing-dependent).
func WithMetrics(reg *stats.Registry) Option {
	return func(c *config) { c.reg = reg }
}

// WithSpanRing bounds the recent-span ring (default 256).
func WithSpanRing(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.spanRing = n
		}
	}
}

// WithJournalRing bounds the journal's event ring (default 256).
func WithJournalRing(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.journalRing = n
		}
	}
}

// WithDumpRing bounds how many dumps the recorder retains (default 16).
func WithDumpRing(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.dumpRing = n
		}
	}
}

// WithShedBurst sets how many overload/shed_start events must accumulate
// before the recorder captures a dump (default 1: every shed transition is
// an anomaly worth a black box).
func WithShedBurst(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.shedBurst = n
		}
	}
}

// Suite bundles the three components one complex needs: the span collector,
// the event journal, and the flight recorder wired to both.
type Suite struct {
	Name      string
	Collector *Collector
	Journal   *Journal
	Recorder  *Recorder
}

// NewSuite builds a collector, journal, and recorder wired together.
func NewSuite(opts ...Option) *Suite {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	col := newCollector(cfg)
	j := newJournal(cfg)
	rec := newRecorder(cfg, col, j)
	return &Suite{Name: cfg.name, Collector: col, Journal: j, Recorder: rec}
}

// SetArmed enables (true) or suppresses (false) journal appends — and with
// them recorder auto-captures. Deterministic scenarios keep the suite
// disarmed through startup (whose event timing is racy) and arm it once the
// plant has converged.
func (s *Suite) SetArmed(armed bool) { s.Journal.SetArmed(armed) }

// RegisterMetrics publishes the suite's families into reg.
func (s *Suite) RegisterMetrics(reg *stats.Registry, labels stats.Labels) {
	s.Collector.RegisterMetrics(reg, labels)
	reg.RegisterCounter("journal_events_total",
		"structured events appended to the journal", labels, &s.Journal.appended)
	reg.RegisterCounter("flight_dumps_total",
		"black-box dumps captured by the flight recorder", labels, &s.Recorder.captures)
}

// NewCollector builds a standalone span collector (tests, single-process
// servers). Prefer NewSuite for full wiring.
func NewCollector(opts ...Option) *Collector {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return newCollector(cfg)
}

// NewJournal builds a standalone journal.
func NewJournal(opts ...Option) *Journal {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return newJournal(cfg)
}

// NewRecorder builds a recorder over an existing collector and journal.
func NewRecorder(col *Collector, j *Journal, opts ...Option) *Recorder {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return newRecorder(cfg, col, j)
}
