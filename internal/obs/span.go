package obs

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/stats"
)

// ServeStage indexes the timestamps a request accrues as it moves through
// the serve path. Stages are stamped in pipeline order but not every request
// visits every stage: a cache hit never stamps SpanAdmit or SpanRender, a
// shed request never stamps SpanRender, and only a degraded request stamps
// SpanStale.
type ServeStage int

// The serve-path stages, in the order the dispatcher and node traverse them.
const (
	SpanStart  ServeStage = iota // request entered the dispatcher
	SpanRoute                    // node selected (routing + retry loop)
	SpanLookup                   // cache consulted (hit or miss known)
	SpanAdmit                    // admission granted by the overload limiter
	SpanRender                   // page regenerated from the database
	SpanStale                    // stale fallback served under shed pressure
	SpanDone                     // response finalized
	NumServeStages
)

var serveStageNames = [NumServeStages]string{
	"start", "route", "lookup", "admit", "render", "stale", "done",
}

// String returns the short stage name used in metric labels and JSON.
func (s ServeStage) String() string {
	if s < 0 || s >= NumServeStages {
		return "unknown"
	}
	return serveStageNames[s]
}

// Outcome strings recorded on spans. They mirror httpserver.Outcome.String()
// values (obs cannot import httpserver — the server imports obs).
const (
	OutcomeHit      = "hit"
	OutcomeMiss     = "miss"
	OutcomeStatic   = "static"
	OutcomeNotFound = "notfound"
	OutcomeError    = "error"
	OutcomeStale    = "stale"
	OutcomeShed     = "shed"
)

var spanOutcomes = []string{
	OutcomeHit, OutcomeMiss, OutcomeStatic, OutcomeNotFound,
	OutcomeError, OutcomeStale, OutcomeShed,
}

// ServeTrace is the value-type record of one served request. Times holds
// one timestamp per stage; a zero time means the request skipped that stage.
// LSN is the version of the object the response reflected (staleness
// provenance: compare against the propagation tracer's in-flight LSNs),
// and DBReads counts database reads performed by the render, if any.
type ServeTrace struct {
	ID      int64
	Path    string
	Node    string
	Outcome string
	LSN     int64
	DBReads int64
	Times   [NumServeStages]time.Time
}

// StageDur returns the time spent reaching stage s: the gap from the most
// recent earlier stage that was actually stamped. Unvisited stages (zero
// time) report 0.
func (t *ServeTrace) StageDur(s ServeStage) time.Duration {
	if s <= SpanStart || s >= NumServeStages || t.Times[s].IsZero() {
		return 0
	}
	for p := s - 1; p >= SpanStart; p-- {
		if !t.Times[p].IsZero() {
			d := t.Times[s].Sub(t.Times[p])
			if d < 0 {
				return 0
			}
			return d
		}
	}
	return 0
}

// Total returns end-to-end latency (SpanStart to SpanDone), or 0 if the
// span never finished.
func (t *ServeTrace) Total() time.Duration {
	if t.Times[SpanStart].IsZero() || t.Times[SpanDone].IsZero() {
		return 0
	}
	d := t.Times[SpanDone].Sub(t.Times[SpanStart])
	if d < 0 {
		return 0
	}
	return d
}

// serveTraceJSON is the wire form of a span: stage durations by name rather
// than raw timestamps, so the /debug/serve payload is self-describing.
type serveTraceJSON struct {
	ID       int64              `json:"id"`
	Path     string             `json:"path"`
	Node     string             `json:"node,omitempty"`
	Outcome  string             `json:"outcome"`
	LSN      int64              `json:"lsn"`
	DBReads  int64              `json:"db_reads"`
	Start    time.Time          `json:"start"`
	TotalMS  float64            `json:"total_ms"`
	StagesMS map[string]float64 `json:"stages_ms,omitempty"`
}

// MarshalJSON renders the span with named stage durations in milliseconds.
func (t ServeTrace) MarshalJSON() ([]byte, error) {
	out := serveTraceJSON{
		ID:      t.ID,
		Path:    t.Path,
		Node:    t.Node,
		Outcome: t.Outcome,
		LSN:     t.LSN,
		DBReads: t.DBReads,
		Start:   t.Times[SpanStart],
		TotalMS: float64(t.Total()) / float64(time.Millisecond),
	}
	for s := SpanRoute; s < SpanDone; s++ {
		if t.Times[s].IsZero() {
			continue
		}
		if out.StagesMS == nil {
			out.StagesMS = make(map[string]float64, int(SpanDone-SpanRoute))
		}
		out.StagesMS[s.String()] = float64(t.StageDur(s)) / float64(time.Millisecond)
	}
	return json.Marshal(out)
}

// spanKey is the context key under which an active *Span travels.
type spanKey struct{}

// Span is the mutable, pooled handle for an in-flight request. All methods
// are nil-receiver safe so instrumented code can call them unconditionally —
// a request served outside any collector (unit tests, direct node calls)
// simply records nothing.
type Span struct {
	c  *Collector
	tr ServeTrace
	// ctx is this span's pre-derived context (Background + spanKey -> span),
	// built once at pool-insert time so starting a span from a background
	// context allocates nothing.
	ctx context.Context
}

// FromContext returns the active span, or nil if the request is untraced.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Stamp records the current time for stage s.
func (sp *Span) Stamp(s ServeStage) {
	if sp == nil || s < 0 || s >= NumServeStages {
		return
	}
	sp.tr.Times[s] = sp.c.now()
}

// SetPath records the requested page ID.
func (sp *Span) SetPath(path string) {
	if sp != nil {
		sp.tr.Path = path
	}
}

// SetNode records which node served the request.
func (sp *Span) SetNode(node string) {
	if sp != nil {
		sp.tr.Node = node
	}
}

// SetOutcome records the terminal outcome (one of the Outcome* constants).
func (sp *Span) SetOutcome(outcome string) {
	if sp != nil {
		sp.tr.Outcome = outcome
	}
}

// SetLSN records the version the response reflected.
func (sp *Span) SetLSN(lsn int64) {
	if sp != nil {
		sp.tr.LSN = lsn
	}
}

// AddDBReads accrues database reads attributed to this request's render.
func (sp *Span) AddDBReads(n int64) {
	if sp != nil {
		sp.tr.DBReads += n
	}
}

// Trace returns a copy of the span's current state (test/debug use).
func (sp *Span) Trace() ServeTrace {
	if sp == nil {
		return ServeTrace{}
	}
	return sp.tr
}

// Finish stamps SpanDone, records the span into the collector's histograms
// and ring, and returns the span to the pool. The span must not be used
// after Finish.
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	c := sp.c
	sp.tr.Times[SpanDone] = c.now()
	c.record(&sp.tr)
	c.pool.Put(sp)
}

// Collector mints and records serve spans for one dispatcher. The hot path
// (StartSpan from a background context, Stamp, Finish) performs zero heap
// allocations: spans are pooled, each pooled span carries a pre-derived
// context, histograms are lock-free, and the ring is preallocated.
type Collector struct {
	now  func() time.Time
	pool sync.Pool
	ids  atomic.Int64

	stageHist   [NumServeStages]*stats.Histogram
	totalHist   *stats.Histogram
	outcomeHist map[string]*stats.Histogram // fixed keys; read-only after init
	dbReads     *stats.Histogram
	recorded    stats.Counter

	mu     sync.Mutex
	ring   []ServeTrace
	next   int
	filled bool
}

// serveLatencyBounds cover sub-10µs cache hits through multi-second
// pathological renders.
var serveLatencyBounds = []float64{
	0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// dbReadBounds bucket per-render database read counts.
var dbReadBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250}

func newCollector(cfg config) *Collector {
	c := &Collector{
		now:         cfg.clock,
		totalHist:   stats.NewHistogram(serveLatencyBounds...),
		outcomeHist: make(map[string]*stats.Histogram, len(spanOutcomes)),
		dbReads:     stats.NewHistogram(dbReadBounds...),
		ring:        make([]ServeTrace, cfg.spanRing),
	}
	for s := SpanRoute; s < NumServeStages; s++ {
		c.stageHist[s] = stats.NewHistogram(serveLatencyBounds...)
	}
	for _, o := range spanOutcomes {
		c.outcomeHist[o] = stats.NewHistogram(serveLatencyBounds...)
	}
	c.pool.New = func() any {
		sp := &Span{c: c}
		sp.ctx = context.WithValue(context.Background(), spanKey{}, sp)
		return sp
	}
	return c
}

// StartSpan mints a span for one request and returns a context carrying it.
// When ctx is nil or context.Background() the span's pre-derived context is
// reused and the call allocates nothing; otherwise one derived context is
// created so cancellation and deadlines propagate.
func (c *Collector) StartSpan(ctx context.Context) (context.Context, *Span) {
	sp := c.pool.Get().(*Span)
	sp.tr = ServeTrace{ID: c.ids.Add(1)}
	sp.tr.Times[SpanStart] = c.now()
	if ctx == nil || ctx == context.Background() {
		return sp.ctx, sp
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// record observes the finished trace into histograms and the ring.
func (c *Collector) record(tr *ServeTrace) {
	for s := SpanRoute; s < NumServeStages; s++ {
		if tr.Times[s].IsZero() {
			continue
		}
		c.stageHist[s].Observe(tr.StageDur(s).Seconds())
	}
	total := tr.Total().Seconds()
	c.totalHist.Observe(total)
	if h := c.outcomeHist[tr.Outcome]; h != nil {
		h.Observe(total)
	}
	if !tr.Times[SpanRender].IsZero() {
		c.dbReads.Observe(float64(tr.DBReads))
	}
	c.recorded.Inc()

	c.mu.Lock()
	c.ring[c.next] = *tr
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.filled = true
	}
	c.mu.Unlock()
}

// Recorded returns how many spans have been recorded.
func (c *Collector) Recorded() int64 { return c.recorded.Value() }

// Recent returns up to n recorded spans, newest first.
func (c *Collector) Recent(n int) []ServeTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := c.next
	if c.filled {
		size = len(c.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]ServeTrace, 0, n)
	for i := 0; i < n; i++ {
		idx := (c.next - 1 - i + len(c.ring)) % len(c.ring)
		out = append(out, c.ring[idx])
	}
	return out
}

// RegisterMetrics publishes the collector's histogram families into reg.
func (c *Collector) RegisterMetrics(reg *stats.Registry, labels stats.Labels) {
	for s := SpanRoute; s < NumServeStages; s++ {
		l := stats.Labels{"stage": s.String()}
		for k, v := range labels {
			l[k] = v
		}
		reg.RegisterHistogram("serve_stage_seconds",
			"time spent reaching each serve-path stage", l, c.stageHist[s])
	}
	for _, o := range spanOutcomes {
		l := stats.Labels{"outcome": o}
		for k, v := range labels {
			l[k] = v
		}
		reg.RegisterHistogram("serve_outcome_seconds",
			"end-to-end serve latency by outcome", l, c.outcomeHist[o])
	}
	reg.RegisterHistogram("serve_seconds",
		"end-to-end serve latency across all outcomes", labels, c.totalHist)
	reg.RegisterHistogram("serve_db_reads",
		"database reads per rendered request", labels, c.dbReads)
	reg.RegisterCounter("serve_spans_recorded_total",
		"serve spans recorded", labels, &c.recorded)
}

// OutcomeSnapshot summarizes latency for one outcome class.
type OutcomeSnapshot struct {
	Outcome string  `json:"outcome"`
	Count   int64   `json:"count"`
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
}

// StageSnapshot summarizes time spent reaching one stage.
type StageSnapshot struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P95MS  float64 `json:"p95_ms"`
}

// CollectorSnapshot is the aggregate view served by /debug/serve.
type CollectorSnapshot struct {
	Recorded   int64             `json:"recorded"`
	MeanMS     float64           `json:"mean_ms"`
	P50MS      float64           `json:"p50_ms"`
	P95MS      float64           `json:"p95_ms"`
	P99MS      float64           `json:"p99_ms"`
	DBReadMean float64           `json:"db_reads_mean"`
	Stages     []StageSnapshot   `json:"stages"`
	Outcomes   []OutcomeSnapshot `json:"outcomes"`
}

const msPerSec = 1000

// Snapshot returns aggregate serve-path statistics.
func (c *Collector) Snapshot() CollectorSnapshot {
	snap := CollectorSnapshot{
		Recorded:   c.recorded.Value(),
		MeanMS:     c.totalHist.Mean() * msPerSec,
		P50MS:      c.totalHist.Quantile(0.50) * msPerSec,
		P95MS:      c.totalHist.Quantile(0.95) * msPerSec,
		P99MS:      c.totalHist.Quantile(0.99) * msPerSec,
		DBReadMean: c.dbReads.Mean(),
	}
	for s := SpanRoute; s < NumServeStages; s++ {
		h := c.stageHist[s]
		if h.Count() == 0 {
			continue
		}
		snap.Stages = append(snap.Stages, StageSnapshot{
			Stage:  s.String(),
			Count:  h.Count(),
			MeanMS: h.Mean() * msPerSec,
			P95MS:  h.Quantile(0.95) * msPerSec,
		})
	}
	for _, o := range spanOutcomes {
		h := c.outcomeHist[o]
		if h.Count() == 0 {
			continue
		}
		snap.Outcomes = append(snap.Outcomes, OutcomeSnapshot{
			Outcome: o,
			Count:   h.Count(),
			MeanMS:  h.Mean() * msPerSec,
			P50MS:   h.Quantile(0.50) * msPerSec,
			P95MS:   h.Quantile(0.95) * msPerSec,
			P99MS:   h.Quantile(0.99) * msPerSec,
		})
	}
	return snap
}
