package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"time"

	"dupserve/internal/stats"
	"dupserve/internal/trace"
)

// Dump is one self-contained black-box capture: the journal event (or
// manual request) that triggered it, plus the recent serve spans,
// propagation traces, journal events, and (optionally) a full metrics
// snapshot at capture time.
type Dump struct {
	Seq     int64                  `json:"seq"`
	Time    time.Time              `json:"time"`
	Complex string                 `json:"complex,omitempty"`
	Kind    string                 `json:"kind"`   // trigger "scope/kind", or "manual"
	Reason  string                 `json:"reason"` // triggering event's message
	Spans   []ServeTrace           `json:"spans"`
	Traces  []trace.Trace          `json:"traces"`
	Events  []Event                `json:"events"`
	Metrics []stats.FamilySnapshot `json:"metrics,omitempty"`
}

// canonicalDump is Dump minus everything timing-dependent: no timestamps,
// no durations, no metrics. What remains — identity and ordering — is fully
// determined by a seeded, sequenced scenario, which makes Canonical() a
// byte-reproducibility oracle for the flight recorder (chaos.RunFlight).
type canonicalDump struct {
	Complex string       `json:"complex,omitempty"`
	Kind    string       `json:"kind"`
	Reason  string       `json:"reason"`
	Spans   []canonSpan  `json:"spans"`
	Traces  []canonTrace `json:"traces"`
	Events  []canonEvent `json:"events"`
}

type canonSpan struct {
	Path    string `json:"path"`
	Node    string `json:"node,omitempty"`
	Outcome string `json:"outcome"`
	LSN     int64  `json:"lsn"`
	DBReads int64  `json:"db_reads"`
}

// canonTrace keeps only the trace's LSN: trace IDs come from a process-wide
// counter, so they differ between two runs in the same process even when the
// scenario is identical. The LSN is the cross-layer correlation key anyway —
// serve spans record the LSN they observed.
type canonTrace struct {
	LSN int64 `json:"lsn"`
}

type canonEvent struct {
	Level string            `json:"level"`
	Scope string            `json:"scope"`
	Kind  string            `json:"kind"`
	Msg   string            `json:"msg"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Canonical renders the dump's deterministic projection as JSON. Two dumps
// of the same seeded scenario produce byte-identical output (encoding/json
// sorts map keys, and all slices preserve capture order).
func (d Dump) Canonical() []byte {
	c := canonicalDump{
		Complex: d.Complex,
		Kind:    d.Kind,
		Reason:  d.Reason,
		Spans:   make([]canonSpan, 0, len(d.Spans)),
		Traces:  make([]canonTrace, 0, len(d.Traces)),
		Events:  make([]canonEvent, 0, len(d.Events)),
	}
	for _, s := range d.Spans {
		c.Spans = append(c.Spans, canonSpan{
			Path: s.Path, Node: s.Node, Outcome: s.Outcome,
			LSN: s.LSN, DBReads: s.DBReads,
		})
	}
	for _, t := range d.Traces {
		c.Traces = append(c.Traces, canonTrace{LSN: t.LSN})
	}
	for _, e := range d.Events {
		c.Events = append(c.Events, canonEvent{
			Level: e.Level.String(), Scope: e.Scope, Kind: e.Kind,
			Msg: e.Msg, Attrs: e.Attrs,
		})
	}
	b, err := json.Marshal(c)
	if err != nil {
		// All field types are marshal-safe; an error here is a programming bug.
		panic("obs: canonical dump marshal: " + err.Error())
	}
	return b
}

// Trigger conditions: a journal event whose "scope/kind" is in this set
// causes an automatic capture.
const (
	TriggerCrash        = "trigger/crash"
	TriggerSLOViolation = "trace/slo_violation"
	TriggerShedStart    = "overload/shed_start"
	TriggerIncoherent   = "audit/incoherent"
	TriggerFlapDamping  = "node/flap_quarantine"
)

// dumpDepth bounds how much recent context one dump carries from each
// source (spans, traces, events).
const dumpDepth = 64

// Recorder is the anomaly flight recorder. It subscribes to the journal and
// captures a Dump whenever a trigger condition fires; Capture() takes one on
// demand. Dumps live in a bounded ring.
type Recorder struct {
	name      string
	col       *Collector
	tracer    *trace.Tracer
	journal   *Journal
	reg       *stats.Registry
	now       func() time.Time
	triggers  map[string]bool
	shedBurst int

	mu        sync.Mutex
	dumps     []Dump
	next      int
	filled    bool
	seq       int64
	shedCount int // shed_start events since the last shed-triggered capture

	captures stats.Counter
}

func newRecorder(cfg config, col *Collector, j *Journal) *Recorder {
	r := &Recorder{
		name:    cfg.name,
		col:     col,
		tracer:  cfg.tracer,
		journal: j,
		reg:     cfg.reg,
		now:     cfg.clock,
		triggers: map[string]bool{
			TriggerCrash:        true,
			TriggerSLOViolation: true,
			TriggerShedStart:    true,
			TriggerIncoherent:   true,
			TriggerFlapDamping:  true,
		},
		shedBurst: cfg.shedBurst,
		dumps:     make([]Dump, cfg.dumpRing),
	}
	if j != nil {
		j.Subscribe(r.observe)
	}
	return r
}

// observe is the journal subscription: capture when the event matches a
// trigger condition. Shed transitions are debounced by the burst threshold.
func (r *Recorder) observe(e Event) {
	key := e.Scope + "/" + e.Kind
	if !r.triggers[key] {
		return
	}
	if key == TriggerShedStart && r.shedBurst > 1 {
		r.mu.Lock()
		r.shedCount++
		below := r.shedCount < r.shedBurst
		if !below {
			r.shedCount = 0
		}
		r.mu.Unlock()
		if below {
			return
		}
	}
	r.capture(key, e.Msg)
}

// Capture takes an on-demand dump (reason is free-form) and returns it.
func (r *Recorder) Capture(reason string) Dump {
	return r.capture("manual", reason)
}

func (r *Recorder) capture(kind, reason string) Dump {
	d := Dump{
		Time:    r.now(),
		Complex: r.name,
		Kind:    kind,
		Reason:  reason,
	}
	if r.col != nil {
		d.Spans = r.col.Recent(dumpDepth)
	}
	if r.tracer != nil {
		d.Traces = r.tracer.Recent(dumpDepth)
	}
	if r.journal != nil {
		d.Events = r.journal.Recent(dumpDepth)
	}
	if r.reg != nil {
		d.Metrics = r.reg.Snapshot()
	}
	r.mu.Lock()
	r.seq++
	d.Seq = r.seq
	r.dumps[r.next] = d
	r.next++
	if r.next == len(r.dumps) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
	r.captures.Inc()
	return d
}

// Latest returns the most recent dump, if any.
func (r *Recorder) Latest() (Dump, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq == 0 {
		return Dump{}, false
	}
	idx := (r.next - 1 + len(r.dumps)) % len(r.dumps)
	return r.dumps[idx], true
}

// Dumps returns all retained dumps, oldest first.
func (r *Recorder) Dumps() []Dump {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	start := 0
	if r.filled {
		size = len(r.dumps)
		start = r.next
	}
	out := make([]Dump, 0, size)
	for i := 0; i < size; i++ {
		out = append(out, r.dumps[(start+i)%len(r.dumps)])
	}
	return out
}

// Captured returns the total number of dumps ever captured.
func (r *Recorder) Captured() int64 { return r.captures.Value() }

// Kinds returns the sorted, de-duplicated trigger kinds among retained dumps.
func (r *Recorder) Kinds() []string {
	set := map[string]bool{}
	for _, d := range r.Dumps() {
		set[d.Kind] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
