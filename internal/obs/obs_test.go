package obs

import (
	"bytes"
	"context"
	"testing"
	"time"

	"dupserve/internal/stats"
)

// TestRecordHotPathDoesNotAllocate proves the serve-span hot path —
// StartSpan from a background context, stage stamps, metadata, Finish —
// allocates zero bytes per request once the span pool is warm. This is the
// cache-hit path every request pays, so it must stay free, like
// trace.Tracer's Record.
func TestRecordHotPathDoesNotAllocate(t *testing.T) {
	c := NewCollector()
	// Warm the pool.
	_, sp := c.StartSpan(context.Background())
	sp.Finish()

	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := c.StartSpan(context.Background())
		sp.SetPath("/en/sports/judo/results")
		sp.Stamp(SpanRoute)
		sp.SetNode("tokyo-sp2-0-up1")
		sp.Stamp(SpanLookup)
		sp.SetOutcome(OutcomeHit)
		sp.SetLSN(42)
		sp.Finish()
	})
	if allocs != 0 {
		t.Fatalf("serve-span hot path allocates %.1f bytes/op, want 0", allocs)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	sp.Stamp(SpanRoute)
	sp.SetPath("/x")
	sp.SetNode("n")
	sp.SetOutcome(OutcomeMiss)
	sp.SetLSN(1)
	sp.AddDBReads(3)
	sp.Finish()
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare context = %v, want nil", got)
	}
	if got := FromContext(nil); got != nil { //nolint:staticcheck // nil ctx is the point
		t.Fatalf("FromContext(nil) = %v, want nil", got)
	}
}

func TestSpanThreadsThroughContext(t *testing.T) {
	c := NewCollector()
	ctx, sp := c.StartSpan(context.Background())
	if FromContext(ctx) != sp {
		t.Fatal("FromContext did not return the started span")
	}
	// Starting from a non-background context derives a new one.
	parent := context.WithValue(context.Background(), struct{ k string }{"k"}, 1)
	ctx2, sp2 := c.StartSpan(parent)
	if FromContext(ctx2) != sp2 {
		t.Fatal("FromContext on derived context did not return the span")
	}
	sp.Finish()
	sp2.Finish()
}

func TestStageDurSkipsUnvisitedStages(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { now = now.Add(time.Millisecond); return now }
	c := NewCollector(WithClock(clock))
	_, sp := c.StartSpan(context.Background())
	sp.Stamp(SpanRoute)
	sp.Stamp(SpanLookup)
	// A miss: admit, then render — no stale stage.
	sp.Stamp(SpanAdmit)
	sp.Stamp(SpanRender)
	sp.SetOutcome(OutcomeMiss)
	tr := sp.Trace()
	sp.Finish()

	if d := tr.StageDur(SpanRender); d != time.Millisecond {
		t.Fatalf("render stage = %v, want 1ms", d)
	}
	if d := tr.StageDur(SpanStale); d != 0 {
		t.Fatalf("unvisited stale stage = %v, want 0", d)
	}

	// A hit skips admit and render: done's predecessor is lookup.
	_, sp = c.StartSpan(context.Background())
	sp.Stamp(SpanRoute)
	sp.Stamp(SpanLookup)
	sp.SetOutcome(OutcomeHit)
	sp.Finish()
	got := c.Recent(1)
	if len(got) != 1 {
		t.Fatalf("Recent(1) returned %d spans", len(got))
	}
	if d := got[0].StageDur(SpanDone); d != time.Millisecond {
		t.Fatalf("done stage (from lookup) = %v, want 1ms", d)
	}
}

func TestCollectorRecentNewestFirstAndBounded(t *testing.T) {
	c := NewCollector(WithSpanRing(4))
	for i := 0; i < 6; i++ {
		_, sp := c.StartSpan(context.Background())
		sp.SetLSN(int64(i))
		sp.SetOutcome(OutcomeHit)
		sp.Finish()
	}
	got := c.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(got))
	}
	for i, tr := range got {
		if want := int64(5 - i); tr.LSN != want {
			t.Fatalf("Recent[%d].LSN = %d, want %d", i, tr.LSN, want)
		}
	}
	if c.Recorded() != 6 {
		t.Fatalf("Recorded = %d, want 6", c.Recorded())
	}
}

func TestCollectorSnapshotAndMetrics(t *testing.T) {
	c := NewCollector()
	_, sp := c.StartSpan(context.Background())
	sp.Stamp(SpanRoute)
	sp.Stamp(SpanLookup)
	sp.Stamp(SpanAdmit)
	sp.Stamp(SpanRender)
	sp.AddDBReads(7)
	sp.SetOutcome(OutcomeMiss)
	sp.Finish()

	snap := c.Snapshot()
	if snap.Recorded != 1 {
		t.Fatalf("snapshot recorded = %d, want 1", snap.Recorded)
	}
	if len(snap.Outcomes) != 1 || snap.Outcomes[0].Outcome != OutcomeMiss {
		t.Fatalf("snapshot outcomes = %+v, want one miss", snap.Outcomes)
	}
	if snap.DBReadMean != 7 {
		t.Fatalf("db read mean = %g, want 7", snap.DBReadMean)
	}

	reg := stats.NewRegistry()
	c.RegisterMetrics(reg, stats.Labels{"complex": "tokyo"})
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"serve_stage_seconds", "serve_db_reads", "serve_outcome_seconds"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("exposition missing family %q:\n%s", want, out)
		}
	}
}

func TestJournalRingSubscribeAndArming(t *testing.T) {
	j := NewJournal(WithJournalRing(3))
	var seen []Event
	j.Subscribe(func(e Event) { seen = append(seen, e) })

	j.Event(LevelWarn, "overload", "shed_start", "queue delay above target", "node", "up1")
	j.Event(LevelInfo, "overload", "shed_stop", "drained")
	if len(seen) != 2 {
		t.Fatalf("subscriber saw %d events, want 2", len(seen))
	}
	if seen[0].Attrs["node"] != "up1" {
		t.Fatalf("attrs = %v, want node=up1", seen[0].Attrs)
	}

	j.SetArmed(false)
	j.Event(LevelError, "trigger", "crash", "suppressed while disarmed")
	if len(seen) != 2 || j.Appended() != 2 {
		t.Fatal("disarmed journal should drop events")
	}
	j.SetArmed(true)

	for i := 0; i < 5; i++ {
		j.Event(LevelInfo, "s", "k", "m")
	}
	recent := j.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("ring retained %d events, want 3", len(recent))
	}
	if recent[0].Seq <= recent[1].Seq {
		t.Fatal("Recent must be newest first")
	}
}

func TestJournalSlogLogger(t *testing.T) {
	j := NewJournal()
	log := j.Logger("cache")
	log.Warn("push exhausted retries", "kind", "push_downgrade", "node", "up2", "page", "/x")
	ev := j.Recent(1)
	if len(ev) != 1 {
		t.Fatalf("journal has %d events, want 1", len(ev))
	}
	e := ev[0]
	if e.Scope != "cache" || e.Kind != "push_downgrade" || e.Level != LevelWarn {
		t.Fatalf("event = %+v", e)
	}
	if e.Attrs["node"] != "up2" || e.Attrs["page"] != "/x" {
		t.Fatalf("attrs = %v", e.Attrs)
	}
}

func TestRecorderAutoCapture(t *testing.T) {
	now := time.Unix(2000, 0)
	s := NewSuite(
		WithName("tokyo"),
		WithClock(func() time.Time { now = now.Add(time.Second); return now }),
	)
	_, sp := s.Collector.StartSpan(context.Background())
	sp.SetPath("/p")
	sp.SetOutcome(OutcomeHit)
	sp.SetLSN(9)
	sp.Finish()

	s.Journal.Event(LevelInfo, "routing", "withdraw", "not a trigger")
	if s.Recorder.Captured() != 0 {
		t.Fatal("non-trigger event must not capture")
	}
	s.Journal.Event(LevelError, "trigger", "crash", "monitor crashed", "lsn", "5")
	if s.Recorder.Captured() != 1 {
		t.Fatalf("captured = %d, want 1", s.Recorder.Captured())
	}
	d, ok := s.Recorder.Latest()
	if !ok {
		t.Fatal("Latest returned no dump")
	}
	if d.Kind != TriggerCrash || d.Complex != "tokyo" {
		t.Fatalf("dump kind=%q complex=%q", d.Kind, d.Complex)
	}
	if len(d.Spans) != 1 || d.Spans[0].LSN != 9 {
		t.Fatalf("dump spans = %+v, want the recorded hit", d.Spans)
	}
	if len(d.Events) != 2 {
		t.Fatalf("dump carries %d events, want 2", len(d.Events))
	}
	if d.Metrics != nil {
		t.Fatal("dump without WithMetrics must omit metrics")
	}
}

func TestRecorderShedBurstThreshold(t *testing.T) {
	s := NewSuite(WithShedBurst(3))
	for i := 0; i < 2; i++ {
		s.Journal.Event(LevelWarn, "overload", "shed_start", "shed")
	}
	if s.Recorder.Captured() != 0 {
		t.Fatal("below-burst shed events must not capture")
	}
	s.Journal.Event(LevelWarn, "overload", "shed_start", "shed")
	if s.Recorder.Captured() != 1 {
		t.Fatalf("captured = %d, want 1 at burst threshold", s.Recorder.Captured())
	}
	// Counter resets after a capture.
	s.Journal.Event(LevelWarn, "overload", "shed_start", "shed")
	if s.Recorder.Captured() != 1 {
		t.Fatal("burst counter must reset after capture")
	}
}

func TestDumpCanonicalIsTimeFreeAndReproducible(t *testing.T) {
	build := func(epoch int64) Dump {
		now := time.Unix(epoch, 0)
		s := NewSuite(
			WithName("tokyo"),
			WithClock(func() time.Time { now = now.Add(time.Millisecond); return now }),
		)
		_, sp := s.Collector.StartSpan(context.Background())
		sp.SetPath("/en/sports/judo/results")
		sp.Stamp(SpanRoute)
		sp.SetNode("up1")
		sp.Stamp(SpanLookup)
		sp.SetOutcome(OutcomeHit)
		sp.SetLSN(12)
		sp.Finish()
		s.Journal.Event(LevelError, "audit", "incoherent", "page diverges", "page", "/x", "node", "up1")
		d, ok := s.Recorder.Latest()
		if !ok {
			t.Fatal("no dump captured")
		}
		return d
	}
	// Different wall-clock epochs, identical logical sequence: canonical
	// bytes must match exactly.
	a := build(1).Canonical()
	b := build(999999).Canonical()
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical dumps differ:\n%s\n%s", a, b)
	}
	for _, want := range []string{`"outcome":"hit"`, `"lsn":12`, `"kind":"audit/incoherent"`} {
		if !bytes.Contains(a, []byte(want)) {
			t.Fatalf("canonical dump missing %s:\n%s", want, a)
		}
	}
	if bytes.Contains(a, []byte(`"time"`)) {
		t.Fatalf("canonical dump leaks timestamps:\n%s", a)
	}
}

func TestRecorderDumpsOldestFirstAndBounded(t *testing.T) {
	s := NewSuite(WithDumpRing(2))
	for i := 0; i < 3; i++ {
		s.Recorder.Capture("n")
	}
	dumps := s.Recorder.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("retained %d dumps, want 2", len(dumps))
	}
	if dumps[0].Seq != 2 || dumps[1].Seq != 3 {
		t.Fatalf("dump seqs = %d,%d, want 2,3 (oldest first)", dumps[0].Seq, dumps[1].Seq)
	}
	if kinds := s.Recorder.Kinds(); len(kinds) != 1 || kinds[0] != "manual" {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestReadProbe(t *testing.T) {
	p := NewReadProbe()
	p.Hook("a")
	p.Hook("b")
	if p.Count() != 2 {
		t.Fatalf("probe count = %d, want 2", p.Count())
	}
}
