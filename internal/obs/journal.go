package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/stats"
)

// Level classifies a journal event's severity.
type Level int8

// The journal levels, ordered by severity.
const (
	LevelInfo Level = iota
	LevelWarn
	LevelError
)

var levelNames = [...]string{"info", "warn", "error"}

// String returns the lowercase level name.
func (l Level) String() string {
	if l < 0 || int(l) >= len(levelNames) {
		return "unknown"
	}
	return levelNames[l]
}

// MarshalJSON renders the level as its name.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// Event is one structured journal entry. Scope identifies the subsystem
// ("trigger", "cache", "overload", "routing", "audit", "trace"), Kind the
// event type within it ("crash", "push_downgrade", "shed_start", ...).
// Attrs carry identity only (node, page, lsn) — never durations or other
// timing-dependent values — so events survive canonical (time-free)
// projection in flight-recorder dumps.
type Event struct {
	Seq   int64             `json:"seq"`
	Time  time.Time         `json:"time"`
	Level Level             `json:"level"`
	Scope string            `json:"scope"`
	Kind  string            `json:"kind"`
	Msg   string            `json:"msg"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Journal is a small leveled, bounded event log. Appends are mutex-ring
// inserts; subscribers are notified after the journal's lock is released so
// a subscriber (the flight recorder) may read the journal back. The journal
// is off the serve hot path — events mark state *transitions* (crash, shed
// flip, downgrade), which are rare by construction.
type Journal struct {
	now   func() time.Time
	armed atomic.Bool

	mu     sync.Mutex
	ring   []Event
	next   int
	filled bool
	seq    int64
	subs   []func(Event)

	appended stats.Counter
}

func newJournal(cfg config) *Journal {
	j := &Journal{now: cfg.clock, ring: make([]Event, cfg.journalRing)}
	j.armed.Store(true)
	return j
}

// SetArmed enables (true) or suppresses (false) appends. Disarmed appends
// are dropped entirely — no ring insert, no subscriber delivery.
func (j *Journal) SetArmed(armed bool) { j.armed.Store(armed) }

// Armed reports whether the journal is accepting events.
func (j *Journal) Armed() bool { return j.armed.Load() }

// Event appends one event. kv lists attribute key/value pairs
// ("node", "tokyo-sp2-0-up1", "lsn", "42"); a trailing odd key is ignored.
func (j *Journal) Event(level Level, scope, kind, msg string, kv ...string) {
	if !j.armed.Load() {
		return
	}
	var attrs map[string]string
	if len(kv) >= 2 {
		attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			attrs[kv[i]] = kv[i+1]
		}
	}
	j.append(Event{Level: level, Scope: scope, Kind: kind, Msg: msg, Attrs: attrs})
}

// append stamps sequence and time, inserts into the ring, and delivers the
// event to subscribers after unlocking.
func (j *Journal) append(e Event) {
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	e.Time = j.now()
	j.ring[j.next] = e
	j.next++
	if j.next == len(j.ring) {
		j.next = 0
		j.filled = true
	}
	subs := j.subs
	j.mu.Unlock()
	j.appended.Inc()
	for _, fn := range subs {
		fn(e)
	}
}

// Subscribe registers fn to receive every appended event. Subscriptions are
// expected at wiring time and cannot be removed.
func (j *Journal) Subscribe(fn func(Event)) {
	j.mu.Lock()
	// Copy-on-write so append can hand the slice out without holding the lock.
	subs := make([]func(Event), len(j.subs), len(j.subs)+1)
	copy(subs, j.subs)
	j.subs = append(subs, fn)
	j.mu.Unlock()
}

// Recent returns up to n events, newest first.
func (j *Journal) Recent(n int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	size := j.next
	if j.filled {
		size = len(j.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		idx := (j.next - 1 - i + len(j.ring)) % len(j.ring)
		out = append(out, j.ring[idx])
	}
	return out
}

// Appended returns how many events have been appended since creation.
func (j *Journal) Appended() int64 { return j.appended.Value() }

// Logger returns a *slog.Logger whose records land in the journal under the
// given scope. The record message becomes Msg, a "kind" attribute (if
// present) becomes Kind, and remaining attributes are stringified into
// Attrs. This is the bridge for code that prefers the standard structured
// logging API over Journal.Event.
func (j *Journal) Logger(scope string) *slog.Logger {
	return slog.New(&journalHandler{j: j, scope: scope})
}

// journalHandler adapts slog records into journal events.
type journalHandler struct {
	j     *Journal
	scope string
	attrs []slog.Attr
}

func (h *journalHandler) Enabled(_ context.Context, level slog.Level) bool {
	return h.j.armed.Load() && level >= slog.LevelInfo
}

func (h *journalHandler) Handle(_ context.Context, r slog.Record) error {
	e := Event{Scope: h.scope, Kind: "log", Msg: r.Message}
	switch {
	case r.Level >= slog.LevelError:
		e.Level = LevelError
	case r.Level >= slog.LevelWarn:
		e.Level = LevelWarn
	default:
		e.Level = LevelInfo
	}
	add := func(a slog.Attr) {
		if a.Key == "kind" {
			e.Kind = a.Value.String()
			return
		}
		if e.Attrs == nil {
			e.Attrs = make(map[string]string)
		}
		e.Attrs[a.Key] = a.Value.String()
	}
	for _, a := range h.attrs {
		add(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		add(a)
		return true
	})
	h.j.append(e)
	return nil
}

func (h *journalHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	merged = append(merged, attrs...)
	return &journalHandler{j: h.j, scope: h.scope, attrs: merged}
}

func (h *journalHandler) WithGroup(name string) slog.Handler {
	// Groups collapse into the scope path; attribute keys stay flat.
	return &journalHandler{j: h.j, scope: h.scope + "." + name, attrs: h.attrs}
}
