package obs

import "sync/atomic"

// ReadProbe counts database reads via db.SetReadHook. The serving replica
// gets one probe installed at wiring time; the renderer reads the counter
// before and after a page generation and attributes the delta to the
// request's span. The hook is a bare atomic increment so it is safe to
// leave installed permanently — it costs one atomic add per DB read.
//
// Attribution is per-process, not per-goroutine: concurrent renders on the
// same replica can bleed reads into each other's deltas. That is acceptable
// for the probe's purpose (orders-of-magnitude provenance — a hit does 0
// reads, a render does tens), and exact per-request isolation would require
// threading context into the database layer.
type ReadProbe struct {
	n atomic.Int64
}

// NewReadProbe returns a probe ready to install with db.SetReadHook.
func NewReadProbe() *ReadProbe { return &ReadProbe{} }

// Hook is the db.ReadHook to install: it counts one read per invocation.
func (p *ReadProbe) Hook(string) { p.n.Add(1) }

// Count returns the total reads observed so far.
func (p *ReadProbe) Count() int64 { return p.n.Load() }
