package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// compareCell mirrors the serve-bench cell fields the regression guard
// reads; unknown fields in the JSON are ignored.
type compareCell struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Throughput float64 `json:"throughput_rps"`
	AllocsPerW float64 `json:"allocs_per_op"`
}

type compareVariant struct {
	Name     string        `json:"name"`
	Cells    []compareCell `json:"cells"`
	HitCells []compareCell `json:"hit_cells"`
}

type compareReport struct {
	NumCPU         int            `json:"num_cpu"`
	Baseline       compareVariant `json:"baseline"`
	Overhauled     compareVariant `json:"overhauled"`
	SpeedupAtMax   float64        `json:"speedup_vs_baseline_at_max_procs"`
	HitAllocsPerOp float64        `json:"overhauled_hit_allocs_per_op_worst"`
}

func loadCompareReport(path string) (compareReport, error) {
	var r compareReport
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Overhauled.HitCells) == 0 || len(r.Baseline.HitCells) == 0 {
		return r, fmt.Errorf("%s: not a serve-bench report (no hit cells)", path)
	}
	return r, nil
}

// allocEpsilon tolerates measurement residue (runtime bookkeeping mallocs
// amortized over the cell) without letting a real per-request allocation —
// which costs at least 1.0/op — slip through.
const allocEpsilon = 0.5

// runCompare diffs a fresh serve-bench report against the committed
// baseline report and returns a non-empty list of regressions when the
// fresh run is materially worse. The rules:
//
//   - Any hit-path alloc increase fails: allocs/op is deterministic (the
//     AllocsPerRun-guarded tests pin it at zero), so growth beyond epsilon
//     means someone put an allocation back on the hit path.
//   - The speedup-vs-baseline ratio may not drop more than maxDropPct: both
//     variants run in the same process on the same host, so their ratio is
//     host-independent — it measures the overhaul itself.
//   - Absolute hit-path throughput may not drop more than maxDropPct, but
//     only when the recorded host shape (NumCPU) matches; across different
//     hosts absolute numbers are not comparable.
func runCompare(committedPath, freshPath string, maxDropPct float64) []string {
	var regressions []string
	committed, err := loadCompareReport(committedPath)
	if err != nil {
		return []string{err.Error()}
	}
	fresh, err := loadCompareReport(freshPath)
	if err != nil {
		return []string{err.Error()}
	}

	if fresh.HitAllocsPerOp > committed.HitAllocsPerOp+allocEpsilon {
		regressions = append(regressions, fmt.Sprintf(
			"hit-path allocs/op grew: %.3f -> %.3f (any increase fails)",
			committed.HitAllocsPerOp, fresh.HitAllocsPerOp))
	}
	for _, fc := range fresh.Overhauled.HitCells {
		if fc.AllocsPerW > allocEpsilon {
			regressions = append(regressions, fmt.Sprintf(
				"hit cell @%d procs allocates %.3f/op (want ~0)", fc.GOMAXPROCS, fc.AllocsPerW))
		}
	}

	frac := maxDropPct / 100
	if committed.SpeedupAtMax > 0 && fresh.SpeedupAtMax < committed.SpeedupAtMax*(1-frac) {
		regressions = append(regressions, fmt.Sprintf(
			"speedup vs baseline dropped >%.0f%%: %.2fx -> %.2fx",
			maxDropPct, committed.SpeedupAtMax, fresh.SpeedupAtMax))
	}

	if committed.NumCPU == fresh.NumCPU {
		for _, cc := range committed.Overhauled.HitCells {
			for _, fc := range fresh.Overhauled.HitCells {
				if fc.GOMAXPROCS != cc.GOMAXPROCS || cc.Throughput <= 0 {
					continue
				}
				if fc.Throughput < cc.Throughput*(1-frac) {
					regressions = append(regressions, fmt.Sprintf(
						"hit throughput @%d procs dropped >%.0f%%: %.0f -> %.0f req/s",
						cc.GOMAXPROCS, maxDropPct, cc.Throughput, fc.Throughput))
				}
			}
		}
	}
	return regressions
}
