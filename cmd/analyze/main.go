// Command analyze reads a web server access log in Common Log Format and
// prints the navigation report the 1998 redesign was based on (section 3.1:
// "The Web server logs collected during the 1996 games provided significant
// insight into the design of the 1998 Web site").
//
//	olympicsd -accesslog access.log &
//	loadgen -url http://localhost:8098 -duration 30s
//	analyze -log access.log -top 15
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"dupserve/internal/weblog"
)

func main() {
	path := flag.String("log", "-", "access log file (- for stdin)")
	top := flag.Int("top", 10, "number of top pages to print")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *path != "-" {
		f, err := os.Open(*path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := weblog.Analyze(r, *top)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("entries:          %d (%d clients, %d errors, %.1f MB)\n",
		rep.Entries, rep.Clients, rep.Errors, float64(rep.Bytes)/1e6)
	fmt.Printf("visits:           %d\n", rep.Visits)
	fmt.Printf("hits per visit:   %.2f\n", rep.HitsPerVisit)
	fmt.Printf("entry-satisfied:  %.1f%% of visits found what they wanted on one page\n", 100*rep.EntrySatisfied)

	fmt.Println("\nhits by section:")
	type kv struct {
		k string
		v int
	}
	var sections []kv
	for k, v := range rep.BySection {
		sections = append(sections, kv{k, v})
	}
	sort.Slice(sections, func(i, j int) bool {
		if sections[i].v != sections[j].v {
			return sections[i].v > sections[j].v
		}
		return sections[i].k < sections[j].k
	})
	for _, s := range sections {
		fmt.Printf("  %-24s %8d\n", s.k, s.v)
	}

	fmt.Println("\ntop pages:")
	for _, p := range rep.TopPages {
		fmt.Printf("  %-44s %8d\n", p.Path, p.Hits)
	}
}
