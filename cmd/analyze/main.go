// Command analyze reads a web server access log in Common Log Format and
// prints the navigation report the 1998 redesign was based on (section 3.1:
// "The Web server logs collected during the 1996 games provided significant
// insight into the design of the 1998 Web site").
//
//	olympicsd -accesslog access.log &
//	loadgen -url http://localhost:8098 -duration 30s
//	analyze -log access.log -top 15
//
// It doubles as the serve-path benchmark regression guard: -compare diffs a
// fresh BENCH_serve.json against the committed baseline and exits non-zero
// on a material regression (any hit-path alloc increase, or a >15% drop in
// throughput or speedup-vs-baseline):
//
//	simulate -serve-bench /tmp/BENCH_serve.json
//	analyze -compare BENCH_serve.json -fresh /tmp/BENCH_serve.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"dupserve/internal/weblog"
)

func main() {
	path := flag.String("log", "-", "access log file (- for stdin)")
	top := flag.Int("top", 10, "number of top pages to print")
	compare := flag.String("compare", "", "committed BENCH_serve.json to compare against (enables compare mode)")
	fresh := flag.String("fresh", "", "freshly measured BENCH_serve.json (required with -compare)")
	maxDrop := flag.Float64("max-drop-pct", 15, "throughput/speedup regression tolerance for -compare, percent")
	flag.Parse()

	if *compare != "" {
		if *fresh == "" {
			log.Fatal("-compare requires -fresh")
		}
		regressions := runCompare(*compare, *fresh, *maxDrop)
		if len(regressions) > 0 {
			fmt.Fprintln(os.Stderr, "serve-bench regression vs committed baseline:")
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  -", r)
			}
			os.Exit(1)
		}
		fmt.Printf("serve-bench: no regression vs %s (tolerance %.0f%%, allocs strict)\n", *compare, *maxDrop)
		return
	}

	var r io.Reader = os.Stdin
	if *path != "-" {
		f, err := os.Open(*path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := weblog.Analyze(r, *top)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("entries:          %d (%d clients, %d errors, %.1f MB)\n",
		rep.Entries, rep.Clients, rep.Errors, float64(rep.Bytes)/1e6)
	fmt.Printf("visits:           %d\n", rep.Visits)
	fmt.Printf("hits per visit:   %.2f\n", rep.HitsPerVisit)
	fmt.Printf("entry-satisfied:  %.1f%% of visits found what they wanted on one page\n", 100*rep.EntrySatisfied)

	fmt.Println("\nhits by section:")
	type kv struct {
		k string
		v int
	}
	var sections []kv
	for k, v := range rep.BySection {
		sections = append(sections, kv{k, v})
	}
	sort.Slice(sections, func(i, j int) bool {
		if sections[i].v != sections[j].v {
			return sections[i].v > sections[j].v
		}
		return sections[i].k < sections[j].k
	})
	for _, s := range sections {
		fmt.Printf("  %-24s %8d\n", s.k, s.v)
	}

	fmt.Println("\ntop pages:")
	for _, p := range rep.TopPages {
		fmt.Printf("  %-44s %8d\n", p.Path, p.Hits)
	}
}
