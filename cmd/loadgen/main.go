// Command loadgen drives HTTP load at a running olympicsd (or any server
// exposing a /sitemap of page paths), reporting throughput, latency
// percentiles broken down per serve outcome (hit/miss/stale/shed), and the
// cache-hit share observed via the X-Cache header — the live counterpart of
// the paper's load measurements. When the server exposes /debug/serve, the
// report closes with the server-side span percentiles for the same run, so
// client-observed and server-measured latency can be compared directly.
//
//	loadgen -url http://localhost:8098 -c 16 -duration 10s
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/stats"
)

func main() {
	base := flag.String("url", "http://localhost:8098", "base URL of the server")
	conc := flag.Int("c", 8, "concurrent clients")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	paths, err := fetchSitemap(*base + "/sitemap")
	if err != nil {
		log.Fatalf("fetch sitemap: %v", err)
	}
	if len(paths) == 0 {
		log.Fatal("empty sitemap")
	}
	log.Printf("loaded %d paths; running %d clients for %v", len(paths), *conc, *duration)

	var (
		requests, errs, hits, misses, statics atomic.Int64
		bytesIn                               atomic.Int64
		latMu                                 sync.Mutex
		lat                                   stats.Summary
		byOutcome                             = map[string]*stats.Summary{}
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			client := &http.Client{Timeout: 10 * time.Second}
			for time.Now().Before(deadline) {
				p := paths[rng.Intn(len(paths))]
				t0 := time.Now()
				resp, err := client.Get(*base + p)
				if err != nil {
					errs.Add(1)
					continue
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				el := time.Since(t0)
				requests.Add(1)
				bytesIn.Add(n)
				// Outcome class: shed surfaces as a 503, everything
				// else carries its class in the X-Cache header.
				outcome := resp.Header.Get("X-Cache")
				if resp.StatusCode == http.StatusServiceUnavailable {
					outcome = "shed"
				}
				latMu.Lock()
				lat.Observe(el.Seconds() * 1000)
				if outcome != "" {
					s := byOutcome[outcome]
					if s == nil {
						s = &stats.Summary{}
						byOutcome[outcome] = s
					}
					s.Observe(el.Seconds() * 1000)
				}
				latMu.Unlock()
				switch outcome {
				case "hit":
					hits.Add(1)
				case "miss":
					misses.Add(1)
				case "static":
					statics.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	total := requests.Load()
	fmt.Printf("requests:   %d (%.0f/s)\n", total, float64(total)/duration.Seconds())
	fmt.Printf("errors:     %d\n", errs.Load())
	fmt.Printf("bytes:      %.1f MB\n", float64(bytesIn.Load())/1e6)
	d := hits.Load() + misses.Load()
	if d > 0 {
		fmt.Printf("cache:      %.2f%% hit (%d hit / %d miss / %d static)\n",
			100*float64(hits.Load())/float64(d), hits.Load(), misses.Load(), statics.Load())
	}
	latMu.Lock()
	fmt.Printf("latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		lat.Percentile(50), lat.Percentile(90), lat.Percentile(99), lat.Max())
	classes := make([]string, 0, len(byOutcome))
	for o := range byOutcome {
		classes = append(classes, o)
	}
	sort.Strings(classes)
	for _, o := range classes {
		s := byOutcome[o]
		fmt.Printf("  %-8s  n=%-8d p50 %.2f  p95 %.2f  p99 %.2f\n",
			o, s.Count(), s.Percentile(50), s.Percentile(95), s.Percentile(99))
	}
	latMu.Unlock()
	printServerSpans(*base + "/debug/serve")
	if errs.Load() > total/10 {
		os.Exit(1)
	}
}

// printServerSpans fetches the server's serve-path span statistics and
// prints its per-outcome latency percentiles alongside the client-side
// numbers above. Servers without /debug/serve are skipped silently — the
// client-side breakdown already printed is the fallback.
func printServerSpans(url string) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var body struct {
		Summary struct {
			Recorded int64   `json:"recorded"`
			P50MS    float64 `json:"p50_ms"`
			P95MS    float64 `json:"p95_ms"`
			P99MS    float64 `json:"p99_ms"`
			Outcomes []struct {
				Outcome string  `json:"outcome"`
				Count   int64   `json:"count"`
				P50MS   float64 `json:"p50_ms"`
				P95MS   float64 `json:"p95_ms"`
				P99MS   float64 `json:"p99_ms"`
			} `json:"outcomes"`
		} `json:"summary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return
	}
	sum := body.Summary
	if sum.Recorded == 0 {
		return
	}
	fmt.Printf("server ms:  spans=%d  p50 %.3f  p95 %.3f  p99 %.3f\n",
		sum.Recorded, sum.P50MS, sum.P95MS, sum.P99MS)
	for _, o := range sum.Outcomes {
		fmt.Printf("  %-8s  n=%-8d p50 %.3f  p95 %.3f  p99 %.3f\n",
			o.Outcome, o.Count, o.P50MS, o.P95MS, o.P99MS)
	}
}

func fetchSitemap(url string) ([]string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sitemap status %s", resp.Status)
	}
	var paths []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		p := strings.TrimSpace(sc.Text())
		if p != "" {
			paths = append(paths, p)
		}
	}
	return paths, sc.Err()
}
