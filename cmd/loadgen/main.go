// Command loadgen drives HTTP load at a running olympicsd (or any server
// exposing a /sitemap of page paths), reporting throughput, latency
// percentiles, and the cache-hit share observed via the X-Cache header —
// the live counterpart of the paper's load measurements.
//
//	loadgen -url http://localhost:8098 -c 16 -duration 10s
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/stats"
)

func main() {
	base := flag.String("url", "http://localhost:8098", "base URL of the server")
	conc := flag.Int("c", 8, "concurrent clients")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	paths, err := fetchSitemap(*base + "/sitemap")
	if err != nil {
		log.Fatalf("fetch sitemap: %v", err)
	}
	if len(paths) == 0 {
		log.Fatal("empty sitemap")
	}
	log.Printf("loaded %d paths; running %d clients for %v", len(paths), *conc, *duration)

	var (
		requests, errs, hits, misses, statics atomic.Int64
		bytesIn                               atomic.Int64
		latMu                                 sync.Mutex
		lat                                   stats.Summary
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			client := &http.Client{Timeout: 10 * time.Second}
			for time.Now().Before(deadline) {
				p := paths[rng.Intn(len(paths))]
				t0 := time.Now()
				resp, err := client.Get(*base + p)
				if err != nil {
					errs.Add(1)
					continue
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				el := time.Since(t0)
				requests.Add(1)
				bytesIn.Add(n)
				latMu.Lock()
				lat.Observe(el.Seconds() * 1000)
				latMu.Unlock()
				switch resp.Header.Get("X-Cache") {
				case "hit":
					hits.Add(1)
				case "miss":
					misses.Add(1)
				case "static":
					statics.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	total := requests.Load()
	fmt.Printf("requests:   %d (%.0f/s)\n", total, float64(total)/duration.Seconds())
	fmt.Printf("errors:     %d\n", errs.Load())
	fmt.Printf("bytes:      %.1f MB\n", float64(bytesIn.Load())/1e6)
	d := hits.Load() + misses.Load()
	if d > 0 {
		fmt.Printf("cache:      %.2f%% hit (%d hit / %d miss / %d static)\n",
			100*float64(hits.Load())/float64(d), hits.Load(), misses.Load(), statics.Load())
	}
	latMu.Lock()
	fmt.Printf("latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		lat.Percentile(50), lat.Percentile(90), lat.Percentile(99), lat.Max())
	latMu.Unlock()
	if errs.Load() > total/10 {
		os.Exit(1)
	}
}

func fetchSitemap(url string) ([]string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sitemap status %s", resp.Status)
	}
	var paths []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		p := strings.TrimSpace(sc.Text())
		if p != "" {
			paths = append(paths, p)
		}
	}
	return paths, sc.Err()
}
