// Command dupbench measures the DUP engine in isolation: propagation
// latency and throughput across graph shapes and sizes, and the simple-ODG
// fast path against the general traversal — the ablation behind the paper's
// observation that most real dependence graphs are "simple" and can skip
// graph traversal entirely.
//
//	dupbench -objects 20000 -fanout 128 -updates 2000
package main

import (
	"flag"
	"fmt"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/odg"
)

func main() {
	objects := flag.Int("objects", 20000, "cached objects in the graph")
	fanout := flag.Int("fanout", 128, "objects affected per underlying-data change")
	updates := flag.Int("updates", 2000, "propagations to run per configuration")
	pageBytes := flag.Int("pagebytes", 8192, "rendered page size")
	flag.Parse()

	fmt.Printf("dupbench: %d objects, fan-out %d, %d updates, %dB pages\n\n",
		*objects, *fanout, *updates, *pageBytes)

	runConfig("simple ODG + update-in-place", *objects, *fanout, *updates, *pageBytes, false, core.PolicyUpdateInPlace)
	runConfig("simple ODG + invalidate", *objects, *fanout, *updates, *pageBytes, false, core.PolicyInvalidate)
	runConfig("general ODG + update-in-place", *objects, *fanout, *updates, *pageBytes, true, core.PolicyUpdateInPlace)
	runConfig("general ODG + invalidate", *objects, *fanout, *updates, *pageBytes, true, core.PolicyInvalidate)
}

// runConfig builds a graph where each underlying-data vertex feeds `fanout`
// objects. In the general variant, a weighted middle layer (a fragment per
// data vertex) forces the BFS path; in the simple variant data feeds
// objects directly.
func runConfig(name string, objects, fanout, updates, pageBytes int, general bool, policy core.Policy) {
	g := odg.New()
	c := cache.New("bench")
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return &cache.Object{Key: key, Value: make([]byte, pageBytes), Version: version}, nil
	}
	var opts []core.Option
	if policy == core.PolicyUpdateInPlace {
		opts = append(opts, core.WithGenerator(gen))
	} else {
		opts = append(opts, core.WithPolicy(policy))
	}
	e := core.NewEngine(g, c, opts...)

	sources := objects / fanout
	if sources == 0 {
		sources = 1
	}
	for s := 0; s < sources; s++ {
		src := odg.NodeID(fmt.Sprintf("db:row%d", s))
		if general {
			frag := odg.NodeID(fmt.Sprintf("frag:f%d", s))
			g.AddNode(frag, odg.KindBoth)
			if err := g.AddWeightedEdge(src, frag, 2); err != nil {
				panic(err)
			}
			for i := 0; i < fanout; i++ {
				key := cache.Key(fmt.Sprintf("/p%d-%d", s, i))
				if err := g.AddEdge(frag, odg.NodeID(key)); err != nil {
					panic(err)
				}
				c.Put(&cache.Object{Key: key, Value: make([]byte, pageBytes)})
			}
		} else {
			for i := 0; i < fanout; i++ {
				key := cache.Key(fmt.Sprintf("/p%d-%d", s, i))
				e.RegisterObject(key, []odg.NodeID{src})
				c.Put(&cache.Object{Key: key, Value: make([]byte, pageBytes)})
			}
		}
	}
	if general == g.IsSimple() {
		panic("bench graph simplicity mismatch")
	}

	start := time.Now()
	totalPages := 0
	for u := 0; u < updates; u++ {
		src := odg.NodeID(fmt.Sprintf("db:row%d", u%sources))
		res := e.OnChange(int64(u+1), src)
		totalPages += res.Updated + res.Invalidated
		if policy == core.PolicyInvalidate {
			// Re-prime so every propagation has work to do.
			for i := 0; i < fanout; i++ {
				key := cache.Key(fmt.Sprintf("/p%d-%d", u%sources, i))
				c.Put(&cache.Object{Key: key, Value: make([]byte, pageBytes)})
			}
		}
	}
	el := time.Since(start)
	fmt.Printf("%-34s %8.1f µs/update  %9.0f pages/s  (%d pages touched)\n",
		name, float64(el.Microseconds())/float64(updates),
		float64(totalPages)/el.Seconds(), totalPages)
}
