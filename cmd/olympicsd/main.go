// Command olympicsd serves a live mini Olympic Games web site over HTTP,
// exercising the full production pipeline of the paper: an in-memory master
// database, a fragment-composed dynamic site, a DUP engine with
// update-in-place propagation, an asynchronous trigger monitor consuming
// the database's change feed, and a pool of serving nodes behind a Network
// Dispatcher.
//
// A background "games" goroutine records results and publishes news on an
// accelerated schedule, so pages visibly change while you browse:
//
//	olympicsd -addr :8098 -tick 2s
//	curl -i localhost:8098/en/home/day01     # X-Cache: hit on every request
//	curl    localhost:8098/en/medals
//	curl    localhost:8098/stats
//	curl    localhost:8098/sitemap           # all page paths (for loadgen)
//	curl    localhost:8098/debug/audit       # consistency audit sweep (JSON)
//	curl    localhost:8098/debug/serve       # serve-path span statistics
//	curl    localhost:8098/debug/journal     # structured event journal
//	curl    localhost:8098/debug/flight      # latest flight-recorder dump
//
// Every /debug endpoint is read-only (non-GET gets 405) and answers a JSON
// 503 while the site is still prerendering, so probes always parse.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/audit"
	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/dispatch"
	"dupserve/internal/fragment"
	"dupserve/internal/httpserver"
	"dupserve/internal/obs"
	"dupserve/internal/odg"
	"dupserve/internal/site"
	"dupserve/internal/stats"
	"dupserve/internal/trace"
	"dupserve/internal/trigger"
	"dupserve/internal/weblog"
)

// syncBuffer is a mutex-guarded byte buffer the access log writes to and
// /logreport reads from.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) reader() io.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.NewReader(append([]byte(nil), b.buf.Bytes()...))
}

func main() {
	addr := flag.String("addr", ":8098", "listen address")
	tick := flag.Duration("tick", 2*time.Second, "interval between live updates")
	nodes := flag.Int("nodes", 4, "serving nodes behind the dispatcher")
	seed := flag.Int64("seed", 1998, "random seed for the games feed")
	paper := flag.Bool("paper", false, "build the full paper-scale site (~17.5k pages)")
	accessLog := flag.String("accesslog", "", "also write the access log to this file (CLF)")
	slo := flag.Duration("slo", 60*time.Second, "freshness SLO (the paper's sixty-second guarantee)")
	traceRing := flag.Int("traces", 256, "recent propagation traces retained for /debug/traces")
	flag.Parse()

	// Observability substrate: one registry every subsystem publishes
	// into, and a tracer following each transaction commit -> push.
	reg := stats.NewRegistry()
	tracer := trace.New(trace.WithSLO(*slo), trace.WithRingSize(*traceRing))
	tracer.RegisterMetrics(reg)

	// Serve-path observability: a span collector the dispatcher mints
	// request spans into, a structured journal the tracer and auditor
	// publish anomalies to, and the flight recorder behind /debug/flight.
	suite := obs.NewSuite(obs.WithName("nagano"),
		obs.WithTracer(tracer), obs.WithMetrics(reg))
	suite.RegisterMetrics(reg, nil)
	tracer.SetOnViolation(func(tr trace.Trace) {
		suite.Journal.Event(obs.LevelWarn, "trace", "slo_violation",
			"propagation exceeded the freshness SLO",
			"lsn", strconv.FormatInt(tr.LSN, 10))
	})

	master := db.New("nagano-master")
	probe := obs.NewReadProbe()
	master.SetReadHook(probe.Hook)
	graph := odg.New()
	group := cache.NewGroup()
	master.RegisterMetrics(reg, stats.Labels{"db": "nagano-master"})

	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	engine := core.NewEngine(graph, group, core.WithGenerator(gen))

	spec := site.DefaultSpec()
	spec.Days = 16
	spec.Languages = []string{"en", "ja"}
	if *paper {
		spec = site.PaperSpec()
	}
	var err error
	st, err = site.Build(spec, master, engine)
	if err != nil {
		log.Fatal(err)
	}
	// Incremental propagation: batches render each changed fragment once
	// and rebuild containing pages by splicing cached fragment bytes.
	engine.SetAssembler(st.Engine)

	// Consistency auditor: taps every served response and, on demand
	// (/debug/audit), shadow-renders the site against a snapshot of the
	// master to verify coherence and ODG completeness.
	aud := audit.New(audit.Config{
		Name:    "nagano",
		Replica: master,
		Build: func(sdb *db.DB, sreg fragment.Registrar) (*fragment.Engine, []string, error) {
			s, err := site.BuildReplica(spec, sdb, sreg)
			if err != nil {
				return nil, nil, err
			}
			return s.Engine, s.Pages(), nil
		},
		Indexer:     func(ch db.Change) []odg.NodeID { return st.Indexer(ch) },
		Tracer:      tracer,
		StaleBudget: *slo,
		SLO:         *slo,
		OnIncoherent: func(page string) {
			suite.Journal.Event(obs.LevelError, "audit", "incoherent",
				"served page diverges from shadow render at the same LSN",
				"page", page)
		},
	})
	aud.RegisterMetrics(reg, nil)

	// Serving pool: one cache + server per node, pooled behind a
	// dispatcher (the per-complex layout of figure 19).
	var pool []dispatch.Node
	statics := st.Statics()
	for i := 0; i < *nodes; i++ {
		name := fmt.Sprintf("up%d", i)
		c := cache.New(name)
		group.Add(c)
		srv := httpserver.New(name, c, gen, master.LSN,
			httpserver.WithResponseTap(aud.Observe),
			httpserver.WithReadProbe(probe))
		for p, body := range statics {
			srv.SetStatic(p, body, "text/html; charset=utf-8")
		}
		srv.RegisterMetrics(reg, nil)
		pool = append(pool, srv)
	}
	nd := dispatch.New(dispatch.Config{Name: "nd", Nodes: pool},
		dispatch.WithObserver(suite.Collector))
	engine.RegisterMetrics(reg, nil)
	group.RegisterMetrics(reg, nil)
	nd.RegisterMetrics(reg, nil)

	// Trigger monitor: the asynchronous component watching the database.
	// Constructed here (the handlers below reference it) but started only
	// after the caches are primed, with the checkpoint pinned at the
	// prerender LSN so nothing is replayed twice.
	mon := trigger.New(trigger.Config{
		Name:        "nagano",
		DB:          master,
		Engine:      engine,
		StartLSN:    master.LSN(),
		BatchWindow: 20 * time.Millisecond,
	},
		trigger.WithIndexer(st.Indexer),
		trigger.WithTracer(tracer))
	mon.RegisterMetrics(reg, nil)

	// Startup runs in the background so the listener comes up immediately
	// and the /debug surface can answer "starting" instead of hanging.
	// Once every cache is primed and the monitor is consuming the change
	// feed, ready flips and the games feed begins.
	var ready atomic.Bool
	go func() {
		log.Printf("prerendering %d pages into %d node caches...", len(st.Pages()), *nodes)
		if err := st.PrerenderAll(master.LSN(), func(o *cache.Object) { group.BroadcastPut(o) }); err != nil {
			log.Fatal(err)
		}
		if err := mon.Start(context.Background()); err != nil {
			log.Fatal(err)
		}
		ready.Store(true)
		log.Printf("ready: %d pages primed", len(st.Pages()))
		runGames(st, *tick, *seed)
	}()

	// Access log: in-memory for the /logreport endpoint, optionally teed
	// to a file — the log-driven methodology behind the 1998 redesign.
	var logBuf syncBuffer
	var logSink io.Writer = &logBuf
	if *accessLog != "" {
		f, err := os.Create(*accessLog)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		logSink = io.MultiWriter(&logBuf, f)
	}
	access := weblog.NewWriter(logSink)

	// writeJSON is the one place debug responses pick up their Content-Type
	// and encoder settings; guard makes a debug handler read-only (405 on
	// non-GET, with Allow) and answers a JSON 503 until startup finishes.
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			log.Printf("debug encode: %v", err)
		}
	}
	guard := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", "GET, HEAD")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			if !ready.Load() {
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable,
					map[string]any{"error": "starting: prerendering site"})
				return
			}
			h(w, r)
		}
	}
	queryN := func(r *http.Request, def int) int {
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil {
				return parsed
			}
		}
		return def
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		client := r.RemoteAddr
		if i := strings.LastIndexByte(client, ':'); i > 0 {
			client = client[:i]
		}
		obj, outcome, err := nd.Serve(r.URL.Path)
		switch outcome {
		case httpserver.OutcomeNotFound:
			access.Log(client, r.URL.Path, http.StatusNotFound, 0)
			http.NotFound(w, r)
			return
		case httpserver.OutcomeShed:
			access.Log(client, r.URL.Path, http.StatusServiceUnavailable, 0)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		case httpserver.OutcomeError:
			access.Log(client, r.URL.Path, http.StatusInternalServerError, 0)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		access.Log(client, r.URL.Path, http.StatusOK, len(obj.Value))
		w.Header().Set("Content-Type", obj.ContentType)
		w.Header().Set("X-Cache", outcome.String())
		w.Header().Set("X-Version", fmt.Sprint(obj.Version))
		w.Write(obj.Value)
	})
	mux.HandleFunc("/logreport", func(w http.ResponseWriter, r *http.Request) {
		access.Flush()
		rep, err := weblog.Analyze(logBuf.reader(), 10)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("/sitemap", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, strings.Join(st.Pages(), "\n"))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		agg := group.AggregateStats()
		writeJSON(w, http.StatusOK, map[string]any{
			"cache":      agg,
			"hitRate":    agg.HitRate(),
			"engine":     engine.Stats(),
			"trigger":    mon.Stats(),
			"dispatcher": nd.Stats(),
			"serve":      suite.Collector.Snapshot(),
			"freshness":  tracer.Snapshot(),
			"dbLSN":      master.LSN(),
			"pages":      len(st.Pages()),
			"currentDay": st.CurrentDay(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})

	// Observability surface: Prometheus text, structured JSON, recent
	// propagation traces, serve spans, the event journal, flight-recorder
	// dumps, and pprof. Everything under /debug goes through guard.
	mux.HandleFunc("/debug/metrics", guard(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			log.Printf("metrics exposition: %v", err)
		}
	}))
	mux.HandleFunc("/debug/metrics.json", guard(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"metrics":     reg.Snapshot(),
			"propagation": tracer.Snapshot(),
		})
	}))
	mux.HandleFunc("/debug/traces", guard(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"summary": tracer.Snapshot(),
			"traces":  tracer.Recent(queryN(r, 50)),
		})
	}))
	mux.HandleFunc("/debug/serve", guard(func(w http.ResponseWriter, r *http.Request) {
		renders, reuses := st.Engine.Accounting()
		es := engine.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"summary": suite.Collector.Snapshot(),
			"spans":   suite.Collector.Recent(queryN(r, 50)),
			// Assembly accounting correlates serve-path spans with the
			// propagation batches that refreshed what was served: renders
			// are fragments rebuilt by DUP batches, reuses are cached
			// fragment bytes spliced into containing pages.
			"assembly": map[string]any{
				"fragment_renders":       renders,
				"fragment_reuses":        reuses,
				"batch_fragment_renders": es.FragmentRenders,
				"batch_fragment_reuses":  es.FragmentReuses,
			},
		})
	}))
	mux.HandleFunc("/debug/journal", guard(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"armed":    suite.Journal.Armed(),
			"appended": suite.Journal.Appended(),
			"events":   suite.Journal.Recent(queryN(r, 50)),
		})
	}))
	mux.HandleFunc("/debug/flight", guard(func(w http.ResponseWriter, r *http.Request) {
		rec := suite.Recorder
		if r.URL.Query().Get("capture") == "1" {
			writeJSON(w, http.StatusOK, rec.Capture("manual capture via /debug/flight"))
			return
		}
		dump, ok := rec.Latest()
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error": "no dumps captured; trip a trigger or pass ?capture=1",
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"captured": rec.Captured(),
			"kinds":    rec.Kinds(),
			"latest":   dump,
		})
	}))
	mux.HandleFunc("/debug/audit", guard(func(w http.ResponseWriter, r *http.Request) {
		rep, err := aud.Sweep()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := rep.WriteJSON(w); err != nil {
			log.Printf("audit report: %v", err)
		}
	}))
	mux.HandleFunc("/debug/pprof/", guard(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", guard(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", guard(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", guard(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", guard(pprof.Trace))

	log.Printf("olympicsd listening on %s (%d pages, %d nodes)", *addr, len(st.Pages()), *nodes)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// runGames replays the competition on an accelerated clock: every tick a
// partial or final result arrives; every few ticks a story publishes; days
// roll over as events run out.
func runGames(st *site.Site, tick time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	day := 1
	storyNum := 0
	pending := append([]*site.Event(nil), st.Events...)
	partialsLeft := map[string]int{}
	for _, ev := range pending {
		partialsLeft[ev.Key] = 3
	}
	for range time.Tick(tick) {
		if len(pending) == 0 {
			log.Printf("games complete; feed idle")
			return
		}
		i := rng.Intn(len(pending))
		ev := pending[i]
		if partialsLeft[ev.Key] > 0 {
			partialsLeft[ev.Key]--
			leader := ev.Participants[rng.Intn(len(ev.Participants))]
			if _, err := st.RecordPartial(ev, leader, fmt.Sprintf("%.1f", 200+rng.Float64()*60)); err != nil {
				log.Printf("partial: %v", err)
			}
			continue
		}
		// Final result.
		p := ev.Participants
		g, s, b := p[rng.Intn(len(p))], p[rng.Intn(len(p))], p[rng.Intn(len(p))]
		if _, err := st.RecordResult(ev, g, s, b, fmt.Sprintf("%.1f", 240+rng.Float64()*20)); err != nil {
			log.Printf("result: %v", err)
		}
		log.Printf("result: %s gold=%s", ev.Key, g)
		pending = append(pending[:i], pending[i+1:]...)

		if rng.Intn(3) == 0 && storyNum < st.Spec.NewsStories {
			if _, err := st.PublishNews(storyNum, fmt.Sprintf("Story %d: drama at %s", storyNum, ev.Sport), "Live from Nagano."); err != nil {
				log.Printf("news: %v", err)
			}
			storyNum++
		}
		// Advance the day as the schedule drains.
		done := len(st.Events) - len(pending)
		wantDay := 1 + done*st.Spec.Days/len(st.Events)
		if wantDay > day && wantDay <= st.Spec.Days {
			day = wantDay
			if _, err := st.SetCurrentDay(day); err != nil {
				log.Printf("day rollover: %v", err)
			} else {
				log.Printf("day %d begins", day)
			}
		}
	}
}
