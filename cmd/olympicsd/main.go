// Command olympicsd serves a live mini Olympic Games web site over HTTP,
// exercising the full production pipeline of the paper: an in-memory master
// database, a fragment-composed dynamic site, a DUP engine with
// update-in-place propagation, an asynchronous trigger monitor consuming
// the database's change feed, and a pool of serving nodes behind a Network
// Dispatcher.
//
// A background "games" goroutine records results and publishes news on an
// accelerated schedule, so pages visibly change while you browse:
//
//	olympicsd -addr :8098 -tick 2s
//	curl -i localhost:8098/en/home/day01     # X-Cache: hit on every request
//	curl    localhost:8098/en/medals
//	curl    localhost:8098/stats
//	curl    localhost:8098/sitemap           # all page paths (for loadgen)
//	curl    localhost:8098/debug/audit       # consistency audit sweep (JSON)
//	curl    localhost:8098/debug/serve       # serve-path span statistics
//	curl    localhost:8098/debug/journal     # structured event journal
//	curl    localhost:8098/debug/flight      # latest flight-recorder dump
//
// Every /debug endpoint is read-only (non-GET gets 405) and answers a JSON
// 503 while the site is still prerendering, so probes always parse.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/audit"
	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/dispatch"
	"dupserve/internal/fragment"
	"dupserve/internal/httpserver"
	"dupserve/internal/netsim"
	"dupserve/internal/obs"
	"dupserve/internal/odg"
	"dupserve/internal/site"
	"dupserve/internal/stats"
	"dupserve/internal/trace"
	"dupserve/internal/trigger"
	"dupserve/internal/weblog"
	"dupserve/internal/wire"
)

// syncBuffer is a mutex-guarded byte buffer the access log writes to and
// /logreport reads from.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) reader() io.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.NewReader(append([]byte(nil), b.buf.Bytes()...))
}

// flags carries every command-line option across the role entry points.
type flags struct {
	addr      string
	tick      time.Duration
	nodes     int
	seed      int64
	paper     bool
	accessLog string
	slo       time.Duration
	traceRing int
	name      string
	wireAddr  string
	peers     string
	wan       string
	days      int
}

func main() {
	role := flag.String("role", "all",
		"process role: all (single process), node (serving node), master|complex (propagation plane), smoke (self-exec loopback deployment)")
	var f flags
	flag.StringVar(&f.addr, "addr", ":8098", "HTTP listen address (empty disables HTTP in node role)")
	flag.DurationVar(&f.tick, "tick", 2*time.Second, "interval between live updates")
	flag.IntVar(&f.nodes, "nodes", 4, "serving nodes behind the dispatcher (all and smoke roles)")
	flag.Int64Var(&f.seed, "seed", 1998, "random seed for the games feed")
	flag.BoolVar(&f.paper, "paper", false, "build the full paper-scale site (~17.5k pages)")
	flag.StringVar(&f.accessLog, "accesslog", "", "also write the access log to this file (CLF)")
	flag.DurationVar(&f.slo, "slo", 60*time.Second, "freshness SLO (the paper's sixty-second guarantee)")
	flag.IntVar(&f.traceRing, "traces", 256, "recent propagation traces retained for /debug/traces")
	flag.StringVar(&f.name, "name", "node", "this process's name (node role)")
	flag.StringVar(&f.wireAddr, "wire-addr", "127.0.0.1:0", "wire transport listen address (node role)")
	flag.StringVar(&f.peers, "peers", "", "comma-separated node wire addresses (master role)")
	flag.StringVar(&f.wan, "wan", "", `shape the wire like a link: "" none, "lan", "modem" (master role)`)
	flag.IntVar(&f.days, "days", 0, "override the site's day count (0 keeps the spec default)")
	flag.Parse()

	switch *role {
	case "all":
		runAll(f)
	case "node":
		runNode(f)
	case "master", "complex":
		runMaster(f)
	case "smoke":
		runSmoke(f)
	default:
		log.Fatalf("unknown -role %q (want all, node, master, or smoke)", *role)
	}
}

// multiSpec is the site specification shared by every process of one
// deployment: master and nodes must build identical renderer sets or the
// nodes' miss-path renders would diverge from the pushed pages.
func multiSpec(f flags) site.Spec {
	if f.paper {
		return site.PaperSpec()
	}
	spec := site.DefaultSpec()
	spec.Days = 16
	spec.Languages = []string{"en", "ja"}
	if f.days > 0 {
		spec.Days = f.days
	}
	return spec
}

func runAll(f flags) {
	addr := &f.addr
	tick := &f.tick
	nodes := &f.nodes
	seed := &f.seed
	accessLog := &f.accessLog
	slo := &f.slo
	traceRing := &f.traceRing

	// Observability substrate: one registry every subsystem publishes
	// into, and a tracer following each transaction commit -> push.
	reg := stats.NewRegistry()
	tracer := trace.New(trace.WithSLO(*slo), trace.WithRingSize(*traceRing))
	tracer.RegisterMetrics(reg)

	// Serve-path observability: a span collector the dispatcher mints
	// request spans into, a structured journal the tracer and auditor
	// publish anomalies to, and the flight recorder behind /debug/flight.
	suite := obs.NewSuite(obs.WithName("nagano"),
		obs.WithTracer(tracer), obs.WithMetrics(reg))
	suite.RegisterMetrics(reg, nil)
	tracer.SetOnViolation(func(tr trace.Trace) {
		suite.Journal.Event(obs.LevelWarn, "trace", "slo_violation",
			"propagation exceeded the freshness SLO",
			"lsn", strconv.FormatInt(tr.LSN, 10))
	})

	master := db.New("nagano-master")
	probe := obs.NewReadProbe()
	master.SetReadHook(probe.Hook)
	graph := odg.New()
	group := cache.NewGroup()
	master.RegisterMetrics(reg, stats.Labels{"db": "nagano-master"})

	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	engine := core.NewEngine(graph, group, core.WithGenerator(gen))

	spec := multiSpec(f)
	var err error
	st, err = site.Build(spec, master, engine)
	if err != nil {
		log.Fatal(err)
	}
	// Incremental propagation: batches render each changed fragment once
	// and rebuild containing pages by splicing cached fragment bytes.
	engine.SetAssembler(st.Engine)

	// Consistency auditor: taps every served response and, on demand
	// (/debug/audit), shadow-renders the site against a snapshot of the
	// master to verify coherence and ODG completeness.
	aud := audit.New(audit.Config{
		Name:    "nagano",
		Replica: master,
		Build: func(sdb *db.DB, sreg fragment.Registrar) (*fragment.Engine, []string, error) {
			s, err := site.BuildReplica(spec, sdb, sreg)
			if err != nil {
				return nil, nil, err
			}
			return s.Engine, s.Pages(), nil
		},
		Indexer:     func(ch db.Change) []odg.NodeID { return st.Indexer(ch) },
		Tracer:      tracer,
		StaleBudget: *slo,
		SLO:         *slo,
		OnIncoherent: func(page string) {
			suite.Journal.Event(obs.LevelError, "audit", "incoherent",
				"served page diverges from shadow render at the same LSN",
				"page", page)
		},
	})
	aud.RegisterMetrics(reg, nil)

	// Serving pool: one cache + server per node, pooled behind a
	// dispatcher (the per-complex layout of figure 19).
	var pool []dispatch.Node
	statics := st.Statics()
	for i := 0; i < *nodes; i++ {
		name := fmt.Sprintf("up%d", i)
		c := cache.New(name)
		group.Add(c)
		srv := httpserver.New(name, c, gen, master.LSN,
			httpserver.WithResponseTap(aud.Observe),
			httpserver.WithReadProbe(probe))
		for p, body := range statics {
			srv.SetStatic(p, body, "text/html; charset=utf-8")
		}
		srv.RegisterMetrics(reg, nil)
		pool = append(pool, srv)
	}
	nd := dispatch.New(dispatch.Config{Name: "nd", Nodes: pool},
		dispatch.WithObserver(suite.Collector))
	engine.RegisterMetrics(reg, nil)
	group.RegisterMetrics(reg, nil)
	nd.RegisterMetrics(reg, nil)

	// Trigger monitor: the asynchronous component watching the database.
	// Constructed here (the handlers below reference it) but started only
	// after the caches are primed, with the checkpoint pinned at the
	// prerender LSN so nothing is replayed twice.
	mon := trigger.New(trigger.Config{
		Name:        "nagano",
		DB:          master,
		Engine:      engine,
		StartLSN:    master.LSN(),
		BatchWindow: 20 * time.Millisecond,
	},
		trigger.WithIndexer(st.Indexer),
		trigger.WithTracer(tracer))
	mon.RegisterMetrics(reg, nil)

	// Startup runs in the background so the listener comes up immediately
	// and the /debug surface can answer "starting" instead of hanging.
	// Once every cache is primed and the monitor is consuming the change
	// feed, ready flips and the games feed begins.
	var ready atomic.Bool
	go func() {
		log.Printf("prerendering %d pages into %d node caches...", len(st.Pages()), *nodes)
		if err := st.PrerenderAll(master.LSN(), func(o *cache.Object) { group.BroadcastPut(o) }); err != nil {
			log.Fatal(err)
		}
		if err := mon.Start(context.Background()); err != nil {
			log.Fatal(err)
		}
		ready.Store(true)
		log.Printf("ready: %d pages primed", len(st.Pages()))
		runGames(st, *tick, *seed)
	}()

	// Access log: in-memory for the /logreport endpoint, optionally teed
	// to a file — the log-driven methodology behind the 1998 redesign.
	var logBuf syncBuffer
	var logSink io.Writer = &logBuf
	if *accessLog != "" {
		f, err := os.Create(*accessLog)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		logSink = io.MultiWriter(&logBuf, f)
	}
	access := weblog.NewWriter(logSink)

	// writeJSON is the one place debug responses pick up their Content-Type
	// and encoder settings; guard makes a debug handler read-only (405 on
	// non-GET, with Allow) and answers a JSON 503 until startup finishes.
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			log.Printf("debug encode: %v", err)
		}
	}
	guard := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", "GET, HEAD")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			if !ready.Load() {
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable,
					map[string]any{"error": "starting: prerendering site"})
				return
			}
			h(w, r)
		}
	}
	queryN := func(r *http.Request, def int) int {
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil {
				return parsed
			}
		}
		return def
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		client := r.RemoteAddr
		if i := strings.LastIndexByte(client, ':'); i > 0 {
			client = client[:i]
		}
		obj, outcome, err := nd.Serve(r.URL.Path)
		switch outcome {
		case httpserver.OutcomeNotFound:
			access.Log(client, r.URL.Path, http.StatusNotFound, 0)
			http.NotFound(w, r)
			return
		case httpserver.OutcomeShed:
			access.Log(client, r.URL.Path, http.StatusServiceUnavailable, 0)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		case httpserver.OutcomeError:
			access.Log(client, r.URL.Path, http.StatusInternalServerError, 0)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		access.Log(client, r.URL.Path, http.StatusOK, len(obj.Value))
		w.Header().Set("Content-Type", obj.ContentType)
		w.Header().Set("X-Cache", outcome.String())
		w.Header().Set("X-Version", fmt.Sprint(obj.Version))
		w.Write(obj.Value)
	})
	mux.HandleFunc("/logreport", func(w http.ResponseWriter, r *http.Request) {
		access.Flush()
		rep, err := weblog.Analyze(logBuf.reader(), 10)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("/sitemap", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, strings.Join(st.Pages(), "\n"))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		agg := group.AggregateStats()
		writeJSON(w, http.StatusOK, map[string]any{
			"cache":      agg,
			"hitRate":    agg.HitRate(),
			"engine":     engine.Stats(),
			"trigger":    mon.Stats(),
			"dispatcher": nd.Stats(),
			"serve":      suite.Collector.Snapshot(),
			"freshness":  tracer.Snapshot(),
			"dbLSN":      master.LSN(),
			"pages":      len(st.Pages()),
			"currentDay": st.CurrentDay(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})

	// Observability surface: Prometheus text, structured JSON, recent
	// propagation traces, serve spans, the event journal, flight-recorder
	// dumps, and pprof. Everything under /debug goes through guard.
	mux.HandleFunc("/debug/metrics", guard(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			log.Printf("metrics exposition: %v", err)
		}
	}))
	mux.HandleFunc("/debug/metrics.json", guard(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"metrics":     reg.Snapshot(),
			"propagation": tracer.Snapshot(),
		})
	}))
	mux.HandleFunc("/debug/traces", guard(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"summary": tracer.Snapshot(),
			"traces":  tracer.Recent(queryN(r, 50)),
		})
	}))
	mux.HandleFunc("/debug/serve", guard(func(w http.ResponseWriter, r *http.Request) {
		renders, reuses := st.Engine.Accounting()
		es := engine.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"summary": suite.Collector.Snapshot(),
			"spans":   suite.Collector.Recent(queryN(r, 50)),
			// Assembly accounting correlates serve-path spans with the
			// propagation batches that refreshed what was served: renders
			// are fragments rebuilt by DUP batches, reuses are cached
			// fragment bytes spliced into containing pages.
			"assembly": map[string]any{
				"fragment_renders":       renders,
				"fragment_reuses":        reuses,
				"batch_fragment_renders": es.FragmentRenders,
				"batch_fragment_reuses":  es.FragmentReuses,
			},
		})
	}))
	mux.HandleFunc("/debug/journal", guard(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"armed":    suite.Journal.Armed(),
			"appended": suite.Journal.Appended(),
			"events":   suite.Journal.Recent(queryN(r, 50)),
		})
	}))
	mux.HandleFunc("/debug/flight", guard(func(w http.ResponseWriter, r *http.Request) {
		rec := suite.Recorder
		if r.URL.Query().Get("capture") == "1" {
			writeJSON(w, http.StatusOK, rec.Capture("manual capture via /debug/flight"))
			return
		}
		dump, ok := rec.Latest()
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error": "no dumps captured; trip a trigger or pass ?capture=1",
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"captured": rec.Captured(),
			"kinds":    rec.Kinds(),
			"latest":   dump,
		})
	}))
	mux.HandleFunc("/debug/audit", guard(func(w http.ResponseWriter, r *http.Request) {
		rep, err := aud.Sweep()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := rep.WriteJSON(w); err != nil {
			log.Printf("audit report: %v", err)
		}
	}))
	mux.HandleFunc("/debug/pprof/", guard(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", guard(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", guard(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", guard(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", guard(pprof.Trace))

	log.Printf("olympicsd listening on %s (%d pages, %d nodes)", *addr, len(st.Pages()), *nodes)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// wireShaper maps the -wan flag to a frame shaper (nil = unshaped).
func wireShaper(wan string) func(int) time.Duration {
	switch wan {
	case "":
		return nil
	case "lan":
		return wire.ShaperFromLink(netsim.LAN())
	case "modem":
		return wire.ShaperFromLink(netsim.Modem288())
	default:
		log.Fatalf("unknown -wan %q (want lan or modem)", wan)
		return nil
	}
}

// runNode is one serving-node process: a database replica fed over the
// wire by the master's log shipping, a cache the master pushes rendered
// pages into, and an HTTP serving layer the master's dispatcher forwards
// requests to — all three registered on one wire listener. The bound
// address is printed as "wire listening on <addr>" for the smoke role's
// parent to parse.
func runNode(f flags) {
	reg := stats.NewRegistry()
	replica := db.New(f.name + "-replica")
	replica.RegisterMetrics(reg, stats.Labels{"db": f.name + "-replica"})
	nodeCache := cache.New(f.name)

	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	// The node's engine regenerates misses against the local replica; its
	// store is the node's own cache (a one-member complex).
	engine := core.NewEngine(odg.New(), nodeCache, core.WithGenerator(gen))
	var err error
	st, err = site.BuildReplica(multiSpec(f), replica, engine)
	if err != nil {
		log.Fatal(err)
	}
	srv := httpserver.New(f.name, nodeCache, gen, replica.LSN)
	for p, body := range st.Statics() {
		srv.SetStatic(p, body, "text/html; charset=utf-8")
	}
	srv.RegisterMetrics(reg, nil)

	wm := wire.NewMetrics()
	wm.RegisterMetrics(reg, stats.Labels{"endpoint": "node"})
	ws := wire.NewServer(f.name,
		wire.WithServerMetrics(wm),
		wire.WithServerStateHook(func(name, event, detail string) {
			log.Printf("wire %s: %s %s", name, event, detail)
		}))
	wire.RegisterReplica(ws, replica)
	wire.RegisterStore(ws, nodeCache)
	wire.RegisterNode(ws, srv)
	bound, err := ws.Listen(f.wireAddr)
	if err != nil {
		log.Fatal(err)
	}
	// The parent smoke process (and humans wiring -peers by hand) read the
	// address off stdout; everything else logs to stderr.
	fmt.Printf("wire listening on %s\n", bound)

	if f.addr == "" {
		select {}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			log.Printf("metrics exposition: %v", err)
		}
	})
	log.Printf("node %s HTTP on %s", f.name, f.addr)
	log.Fatal(http.ListenAndServe(f.addr, mux))
}

// masterPlane is the propagation plane the master and smoke roles share: a
// master database feeding per-node replication, a DUP engine pushing
// rendered pages through a wire group, a trigger monitor on the CDC feed,
// and a dispatcher fronting the nodes over the wire.
type masterPlane struct {
	reg         *stats.Registry
	suite       *obs.Suite
	master      *db.DB
	st          *site.Site
	engine      *core.Engine
	group       *wire.GroupClient
	replicators []*db.Replicator
	replicas    []*wire.ReplicaClient
	remotes     []*wire.RemoteNode
	mon         *trigger.Monitor
	nd          *dispatch.Dispatcher
}

// startMasterPlane wires the master side against the given node addresses:
// one pooled wire client per node carries all three flows (log shipping,
// cache pushes, serve/probe traffic).
func startMasterPlane(f flags, peers []string) *masterPlane {
	p := &masterPlane{reg: stats.NewRegistry()}
	tracer := trace.New(trace.WithSLO(f.slo), trace.WithRingSize(f.traceRing))
	tracer.RegisterMetrics(p.reg)
	p.suite = obs.NewSuite(obs.WithName("master"),
		obs.WithTracer(tracer), obs.WithMetrics(p.reg))
	p.suite.RegisterMetrics(p.reg, nil)

	p.master = db.New("master")
	p.master.RegisterMetrics(p.reg, stats.Labels{"db": "master"})
	shape := wireShaper(f.wan)

	wm := wire.NewMetrics()
	wm.RegisterMetrics(p.reg, stats.Labels{"endpoint": "master"})
	hook := func(name, event, detail string) {
		level := obs.LevelInfo
		if event == "disconnect" || event == "read_error" || event == "partition_drop" {
			level = obs.LevelWarn
		}
		p.suite.Journal.Event(level, "wire", event,
			"wire connection state change", "peer", name, "detail", detail)
	}

	var stores []*wire.StoreClient
	var pool []dispatch.Node
	for i, addr := range peers {
		name := fmt.Sprintf("up%d", i)
		opts := []wire.ClientOption{
			wire.WithClientMetrics(wm),
			wire.WithClientStateHook(hook),
		}
		if shape != nil {
			opts = append(opts, wire.WithShaper(shape))
		}
		c := wire.Dial(name, addr, opts...)
		stores = append(stores, wire.NewStoreClient(name, c))
		p.replicas = append(p.replicas, wire.NewReplicaClient(c))
		rn := wire.NewRemoteNode(name, c)
		p.remotes = append(p.remotes, rn)
		pool = append(pool, rn)
	}
	p.group = wire.NewGroupClient(stores,
		wire.WithGroupDowngradeHook(func(node string, key cache.Key) {
			p.suite.Journal.Event(obs.LevelWarn, "wire", "push_downgrade",
				"wire push exhausted retries; node entry invalidated",
				"node", node, "key", string(key))
		}))
	p.group.RegisterMetrics(p.reg, stats.Labels{"transport": "wire"})

	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	p.engine = core.NewEngine(odg.New(), p.group, core.WithGenerator(gen))
	var err error
	st, err = site.Build(multiSpec(f), p.master, p.engine)
	if err != nil {
		log.Fatal(err)
	}
	p.st = st
	p.engine.SetAssembler(st.Engine)
	p.engine.RegisterMetrics(p.reg, nil)

	// Ship the log (seed data included) to every node's replica, then wait
	// for catch-up so node-side miss renders see the same data the pushed
	// pages were rendered from.
	for _, rc := range p.replicas {
		p.replicators = append(p.replicators, db.StartReplicationTo(p.master, rc))
	}
	for i, r := range p.replicators {
		if !r.WaitCaughtUp(30 * time.Second) {
			log.Fatalf("node %d replica never caught up (lsn %d vs master %d)",
				i, p.replicas[i].LSN(), p.master.LSN())
		}
	}
	log.Printf("replicas caught up at lsn %d", p.master.LSN())

	log.Printf("prerendering %d pages into %d node caches over the wire...", len(st.Pages()), len(peers))
	if err := st.PrerenderAll(p.master.LSN(), func(o *cache.Object) { p.group.ApplyPut(o) }); err != nil {
		log.Fatal(err)
	}

	p.mon = trigger.New(trigger.Config{
		Name:        "master",
		DB:          p.master,
		Engine:      p.engine,
		StartLSN:    p.master.LSN(),
		BatchWindow: 20 * time.Millisecond,
	}, trigger.WithIndexer(st.Indexer), trigger.WithTracer(tracer))
	p.mon.RegisterMetrics(p.reg, nil)
	if err := p.mon.Start(context.Background()); err != nil {
		log.Fatal(err)
	}

	p.nd = dispatch.New(dispatch.Config{Name: "nd", Nodes: pool},
		dispatch.WithObserver(p.suite.Collector))
	p.nd.RegisterMetrics(p.reg, nil)
	return p
}

// runMaster is the propagation-plane process: it owns the master database,
// renders and pushes pages to the -peers nodes, ships them the log, and
// fronts them with a dispatcher on -addr.
func runMaster(f flags) {
	if f.peers == "" {
		log.Fatal("master role requires -peers (comma-separated node wire addresses; start nodes with -role node)")
	}
	peers := strings.Split(f.peers, ",")
	p := startMasterPlane(f, peers)
	go runGames(p.st, f.tick, f.seed)

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		obj, outcome, err := p.nd.Serve(r.URL.Path)
		switch outcome {
		case httpserver.OutcomeNotFound:
			http.NotFound(w, r)
			return
		case httpserver.OutcomeShed:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		case httpserver.OutcomeError:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", obj.ContentType)
		w.Header().Set("X-Cache", outcome.String())
		w.Header().Set("X-Version", fmt.Sprint(obj.Version))
		w.Write(obj.Value)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/sitemap", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, strings.Join(p.st.Pages(), "\n"))
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := p.reg.WriteText(w); err != nil {
			log.Printf("metrics exposition: %v", err)
		}
	})
	mux.HandleFunc("/debug/journal", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"events": p.suite.Journal.Recent(100)})
	})
	log.Printf("master listening on %s (%d pages, %d nodes over the wire)",
		f.addr, len(p.st.Pages()), len(peers))
	log.Fatal(http.ListenAndServe(f.addr, mux))
}

// runSmoke is the loopback deployment check `make check` runs: self-exec
// -nodes node child processes, bring up the master plane against them,
// commit a result, and verify the wire carried it into every node — log
// shipping, cache push, and remote serve all exercised across real process
// boundaries. Exits 0 on success.
func runSmoke(f flags) {
	if f.days == 0 {
		f.days = 2 // keep the smoke site small
	}
	if f.nodes < 2 {
		f.nodes = 2
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}

	var peers []string
	var children []*exec.Cmd
	defer func() {
		for _, c := range children {
			c.Process.Kill()
			c.Wait()
		}
	}()
	for i := 0; i < f.nodes; i++ {
		name := fmt.Sprintf("up%d", i)
		cmd := exec.Command(exe, "-role", "node", "-name", name,
			"-wire-addr", "127.0.0.1:0", "-addr", "",
			"-days", strconv.Itoa(f.days), fmt.Sprintf("-paper=%t", f.paper))
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		children = append(children, cmd)
		sc := bufio.NewScanner(out)
		addr := ""
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "wire listening on "); ok {
				addr = a
				break
			}
		}
		if addr == "" {
			log.Fatalf("node %s never reported its wire address", name)
		}
		go io.Copy(io.Discard, out) // keep the pipe drained
		peers = append(peers, addr)
		log.Printf("node %s up at %s", name, addr)
	}

	p := startMasterPlane(f, peers)
	defer p.group.Close()
	defer p.mon.Shutdown(context.Background())
	for _, r := range p.replicators {
		defer r.Stop()
	}

	// Every node must already hold every prerendered page: spot-check by
	// serving each page once through the dispatcher, then prove a fresh
	// commit reaches every node's cache over the wire.
	probePage := p.st.Pages()[0]
	serveAll := func() map[string][]byte {
		out := make(map[string][]byte)
		for _, rn := range p.remotes {
			obj, outcome, err := rn.Serve(probePage)
			if err != nil || outcome == httpserver.OutcomeError {
				log.Fatalf("%s: serve %s: outcome %v err %v", rn.Name(), probePage, outcome, err)
			}
			out[rn.Name()] = obj.Value
		}
		return out
	}
	serveAll()

	ev := p.st.Events[0]
	var changedPage string
	if tx, err := p.st.RecordResult(ev, ev.Participants[0], ev.Participants[1], ev.Participants[2], "240.0"); err != nil {
		log.Fatal(err)
	} else {
		changedPage = fmt.Sprintf("lsn %d", tx.LSN)
	}
	p.mon.Flush()

	// The event's result page must now serve the new gold medalist from
	// every node's cache (a hit, pushed over the wire — not a re-render).
	resultPage := fmt.Sprintf("/en/sports/%s/%s", ev.Sport, ev.Key)
	okNodes := 0
	for _, rn := range p.remotes {
		obj, outcome, err := rn.Serve(resultPage)
		if err != nil {
			log.Fatalf("%s: serve %s: %v", rn.Name(), resultPage, err)
		}
		if outcome != httpserver.OutcomeHit {
			log.Fatalf("%s: %s served as %v, want pushed cache hit", rn.Name(), resultPage, outcome)
		}
		if !bytes.Contains(obj.Value, []byte(ev.Participants[0])) {
			log.Fatalf("%s: %s does not show the new result", rn.Name(), resultPage)
		}
		okNodes++
	}
	log.Printf("smoke ok: %s propagated to %d/%d nodes over the wire (%s)",
		resultPage, okNodes, len(p.remotes), changedPage)
	fmt.Println("SMOKE OK")
}

// runGames replays the competition on an accelerated clock: every tick a
// partial or final result arrives; every few ticks a story publishes; days
// roll over as events run out.
func runGames(st *site.Site, tick time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	day := 1
	storyNum := 0
	pending := append([]*site.Event(nil), st.Events...)
	partialsLeft := map[string]int{}
	for _, ev := range pending {
		partialsLeft[ev.Key] = 3
	}
	for range time.Tick(tick) {
		if len(pending) == 0 {
			log.Printf("games complete; feed idle")
			return
		}
		i := rng.Intn(len(pending))
		ev := pending[i]
		if partialsLeft[ev.Key] > 0 {
			partialsLeft[ev.Key]--
			leader := ev.Participants[rng.Intn(len(ev.Participants))]
			if _, err := st.RecordPartial(ev, leader, fmt.Sprintf("%.1f", 200+rng.Float64()*60)); err != nil {
				log.Printf("partial: %v", err)
			}
			continue
		}
		// Final result.
		p := ev.Participants
		g, s, b := p[rng.Intn(len(p))], p[rng.Intn(len(p))], p[rng.Intn(len(p))]
		if _, err := st.RecordResult(ev, g, s, b, fmt.Sprintf("%.1f", 240+rng.Float64()*20)); err != nil {
			log.Printf("result: %v", err)
		}
		log.Printf("result: %s gold=%s", ev.Key, g)
		pending = append(pending[:i], pending[i+1:]...)

		if rng.Intn(3) == 0 && storyNum < st.Spec.NewsStories {
			if _, err := st.PublishNews(storyNum, fmt.Sprintf("Story %d: drama at %s", storyNum, ev.Sport), "Live from Nagano."); err != nil {
				log.Printf("news: %v", err)
			}
			storyNum++
		}
		// Advance the day as the schedule drains.
		done := len(st.Events) - len(pending)
		wantDay := 1 + done*st.Spec.Days/len(st.Events)
		if wantDay > day && wantDay <= st.Spec.Days {
			day = wantDay
			if _, err := st.SetCurrentDay(day); err != nil {
				log.Printf("day rollover: %v", err)
			} else {
				log.Printf("day %d begins", day)
			}
		}
	}
}
