// Command simulate runs the 16-day Olympic Games simulation and prints the
// paper's tables and figures (section 5 plus the quantitative claims of
// sections 2-4). Each experiment can be run alone:
//
//	simulate -experiment all        # everything below
//	simulate -experiment hitrate    # E1: DUP-update vs DUP-invalidate vs 1996-conservative
//	simulate -experiment daily      # E4/Figure 20: hits by day
//	simulate -experiment traffic    # E5/Figure 21: bytes by day
//	simulate -experiment hourly     # E3/Figure 18: hits by hour per complex
//	simulate -experiment response   # E6/Figure 22: response times by day/region
//	simulate -experiment geo        # E7/Figure 23: request breakdown by region
//	simulate -experiment table1     # E8/Table 1: response comparison, non-USA
//	simulate -experiment table2     # E9/Table 2: response comparison, USA
//	simulate -experiment peaks      # E10: peak minute, ski-jump Tokyo share
//	simulate -experiment cachemem   # E11: cache memory, no replacement
//	simulate -experiment failover   # E12: elegant degradation / availability
//	simulate -experiment redesign   # E13: 1996 vs 1998 navigation hits
//	simulate -experiment sessions   # §3.1 methodology: session traffic through the log analyzer
//	simulate -experiment freshness  # E16: update-to-visible latency, regen volume
//
// Chaos mode runs a fault-injection tournament against the live deployment
// instead of the discrete-event simulation:
//
//	simulate -chaos -seed 1 -rounds 5
//
// Each round arms one fault kind (replication partition, monitor crash,
// push failure, render error, node death), commits transactions through
// the window, clears the fault, and asserts convergence: zero lost
// transactions, zero stale pages, zero residual freshness-SLO violations.
// After the rounds, the overload scenario runs: a synthetic request flood
// at 5x estimated capacity asserting hits are always admitted, degraded
// responses never exceed the staleness budget, refusals stay bounded, and
// the plant reconverges and re-advertises. Output is deterministic for a
// given seed; the process exits non-zero if any invariant breaks.
//
// The overload scenario can also run alone, and there is a benchmark mode
// that records throughput, p50/p99 latency, and shed/stale rates at 1x,
// 3x, and 5x of capacity as JSON:
//
//	simulate -overload -seed 1
//	simulate -overload-bench BENCH_overload.json
//
// Both scenarios end with a consistency audit: every complex's auditor
// shadow-renders the full page set against its replica at a pinned LSN and
// verifies served bytes match, with zero incoherent pages and zero
// missing or superfluous ODG edges. The audit can also run standalone:
//
//	simulate -audit -seed 1
//
// Flight mode drives the anomaly flight recorder through one instance of
// each trigger condition (freshness-SLO violation, monitor crash, overload
// shed, audit-incoherent page) on a sequenced single-complex deployment and
// prints the dump inventory plus a digest of the canonical dump bytes,
// which is identical across runs with the same seed:
//
//	simulate -flight -seed 1
//
// Recovery mode drives one node through the full recovery protocol — kill,
// commits through the outage, warmup-gated readmission with a slow-start
// ramp, then a flap storm asserting exponentially growing quarantines —
// and a benchmark mode measures warm against cold readmission (MTTR and
// the post-rejoin miss storm) as JSON:
//
//	simulate -recovery -seed 1
//	simulate -recovery-bench BENCH_recovery.json
//
// The wire benchmark drives the framed TCP transport over loopback — a
// pipelined stream of page pushes into a node cache — and records push
// throughput plus the client's RPC latency quantiles as JSON:
//
//	simulate -wire-bench BENCH_wire.json
//
// Traffic runs at a configurable fraction of the paper's 634.7M hits
// (default 1/1000); printed hit figures are rescaled back to paper volume
// for side-by-side comparison.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/chaos"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/netsim"
	"dupserve/internal/odg"
	"dupserve/internal/routing"
	"dupserve/internal/sim"
	"dupserve/internal/site"
	"dupserve/internal/weblog"
	"dupserve/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run (see doc comment)")
	hits := flag.Int64("hits", 600_000, "total simulated hits across the games (paper: 634.7M)")
	seed := flag.Int64("seed", 1998, "random seed")
	small := flag.Bool("small", false, "use a small site (fast; for smoke runs)")
	verbose := flag.Bool("v", false, "per-day progress")
	csvDir := flag.String("csv", "", "also write each figure's series as CSV into this directory")
	chaosMode := flag.Bool("chaos", false, "run the fault-injection tournament (plus the overload scenario) instead of the simulation")
	rounds := flag.Int("rounds", 5, "fault rounds for -chaos")
	overloadMode := flag.Bool("overload", false, "run only the 5:1 overload scenario")
	auditMode := flag.Bool("audit", false, "run only the standalone consistency audit: commit results under load, converge, and shadow-render every page of every complex")
	flightMode := flag.Bool("flight", false, "run the flight-recorder scenario: provoke each anomaly trigger once and report the captured black-box dumps")
	recoveryMode := flag.Bool("recovery", false, "run the node-recovery scenario: kill a node, commit through the outage, readmit it through warmup + slow-start, then flap it and assert exponential damping")
	recoveryBench := flag.String("recovery-bench", "", "write the warm-vs-cold readmission benchmark as JSON to this file")
	wireBench := flag.String("wire-bench", "", "write the loopback wire-transport benchmark (push throughput, RPC latency) as JSON to this file")
	wirePushes := flag.Int("wire-pushes", 5000, "page pushes for -wire-bench")
	overloadBench := flag.String("overload-bench", "", "write the 1x/3x/5x overload benchmark as JSON to this file")
	propBench := flag.String("propagation-bench", "", "write the incremental-propagation benchmark (memoized assembly vs full re-render) as JSON to this file")
	propBursts := flag.Int("propagation-bursts", 400, "update bursts for -propagation-bench")
	serveBench := flag.String("serve-bench", "", "write the serve-path saturation benchmark (striped/RCU/zero-alloc vs pre-overhaul baseline across GOMAXPROCS 1/2/4/8) as JSON to this file")
	flag.Parse()

	if *serveBench != "" {
		rep, err := runServeBench(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve-bench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*serveBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve-bench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "serve-bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "serve-bench:", err)
			os.Exit(1)
		}
		last := rep.Overhauled.HitCells[len(rep.Overhauled.HitCells)-1]
		fmt.Fprintf(os.Stderr,
			"serve benchmark written to %s (hit path %.0f req/s @%d procs, %.2fx vs baseline, %.2f allocs/op; mixed %.2fx)\n",
			*serveBench, last.Throughput, last.GOMAXPROCS, rep.SpeedupAtMax, rep.HitAllocsPerOp, rep.MixedSpeedupAtMax)
		return
	}

	if *propBench != "" {
		rep, err := runPropagationBench(*seed, *propBursts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "propagation-bench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*propBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "propagation-bench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "propagation-bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "propagation-bench:", err)
			os.Exit(1)
		}
		if rep.RendersTotal != rep.ChangedFragments {
			fmt.Fprintf(os.Stderr, "propagation-bench: renders_total=%d != changed_fragments=%d\n",
				rep.RendersTotal, rep.ChangedFragments)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "propagation benchmark written to %s (renders=%d reuses=%d speedup=%.2fx)\n",
			*propBench, rep.RendersTotal, rep.ReusesTotal, rep.Speedup)
		return
	}

	if *overloadBench != "" {
		rep, err := chaos.BenchOverload(chaos.OverloadConfig{Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "overload-bench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*overloadBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overload-bench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "overload-bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "overload-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "overload benchmark written to %s\n", *overloadBench)
		return
	}

	if *wireBench != "" {
		rep, err := runWireBench(*seed, *wirePushes, 8<<10, 8)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wire-bench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*wireBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wire-bench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "wire-bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "wire-bench:", err)
			os.Exit(1)
		}
		if rep.CallErrors != 0 || rep.Reconnects != 0 {
			fmt.Fprintf(os.Stderr, "wire-bench: loopback run not clean: call_errors=%d reconnects=%d\n",
				rep.CallErrors, rep.Reconnects)
			os.Exit(1)
		}
		if rep.PushesPerSec <= 0 || rep.RPCP99Ms <= 0 {
			fmt.Fprintf(os.Stderr, "wire-bench: degenerate measurements: pushes/s=%.1f p99=%.3fms\n",
				rep.PushesPerSec, rep.RPCP99Ms)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr,
			"wire benchmark written to %s (%.0f pushes/s, %.1f MB/s payload, p50=%.3fms p99=%.3fms)\n",
			*wireBench, rep.PushesPerSec, rep.PayloadMBPerS, rep.RPCP50Ms, rep.RPCP99Ms)
		return
	}

	if *recoveryBench != "" {
		rep, err := chaos.BenchRecovery(chaos.RecoveryBenchConfig{Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "recovery-bench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*recoveryBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recovery-bench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "recovery-bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "recovery-bench:", err)
			os.Exit(1)
		}
		warm, cold := rep.Modes[0], rep.Modes[1]
		if warm.PostRejoinMisses >= cold.PostRejoinMisses {
			fmt.Fprintf(os.Stderr, "recovery-bench: warm misses=%d not below cold misses=%d\n",
				warm.PostRejoinMisses, cold.PostRejoinMisses)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr,
			"recovery benchmark written to %s (warm misses=%d cold misses=%d reduction=%.0f%%)\n",
			*recoveryBench, warm.PostRejoinMisses, cold.PostRejoinMisses, rep.MissReductionPct)
		return
	}

	if *recoveryMode {
		res, err := chaos.RunRecovery(chaos.RecoveryConfig{Seed: *seed, Out: os.Stdout})
		if err != nil {
			fmt.Fprintln(os.Stderr, "recovery:", err)
			os.Exit(1)
		}
		if !res.OK {
			os.Exit(1)
		}
		return
	}

	if *flightMode {
		res, err := chaos.RunFlight(chaos.FlightConfig{Seed: *seed, Out: os.Stdout})
		if err != nil {
			fmt.Fprintln(os.Stderr, "flight:", err)
			os.Exit(1)
		}
		if !res.OK {
			os.Exit(1)
		}
		return
	}

	if *auditMode {
		res, err := chaos.RunAudit(chaos.AuditConfig{Seed: *seed, Out: os.Stdout})
		if err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			os.Exit(1)
		}
		if !res.OK {
			os.Exit(1)
		}
		return
	}

	if *chaosMode || *overloadMode {
		ok := true
		if *chaosMode {
			res, err := chaos.Run(chaos.Config{Seed: *seed, Rounds: *rounds, Out: os.Stdout})
			if err != nil {
				fmt.Fprintln(os.Stderr, "chaos:", err)
				os.Exit(1)
			}
			ok = ok && res.OK
		}
		ores, err := chaos.RunOverload(chaos.OverloadConfig{Seed: *seed, Out: os.Stdout})
		if err != nil {
			fmt.Fprintln(os.Stderr, "overload:", err)
			os.Exit(1)
		}
		ok = ok && ores.OK
		if !ok {
			os.Exit(1)
		}
		return
	}

	cfg := sim.DefaultConfig()
	cfg.Seed = *seed
	cfg.TotalHits = *hits
	if *small {
		cfg.SiteSpec = site.Spec{
			Sports: 4, EventsPerSport: 6, Athletes: 400, Countries: 16,
			NewsStories: 60, Days: 16, EventsPerAthlete: 1, Languages: []string{"en", "ja"},
		}
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	needMain := map[string]bool{
		"all": true, "daily": true, "traffic": true, "hourly": true,
		"response": true, "geo": true, "peaks": true, "cachemem": true,
		"failover": true, "freshness": true, "redesign": true,
	}
	var res *sim.Result
	if needMain[*experiment] {
		fmt.Fprintf(os.Stderr, "running %d-day simulation (%d hits, %d pages site)...\n",
			cfg.SiteSpec.Days, cfg.TotalHits, 0)
		var err error
		res, err = sim.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "simulation complete in %v (%d pages)\n\n", res.WallClock.Round(time.Millisecond), res.PagesTotal)
	}

	if *csvDir != "" && res != nil {
		if err := writeCSVs(*csvDir, res); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "CSV series written to %s\n", *csvDir)
	}

	switch *experiment {
	case "all":
		printHitRate(cfg)
		printDaily(res)
		printTraffic(res)
		printHourly(res)
		printResponse(res)
		printGeo(res)
		printTables()
		printPeaks(res)
		printCacheMem(res)
		printFailover(res)
		printRedesign(res)
		printSessions()
		printFreshness(res)
	case "hitrate":
		printHitRate(cfg)
	case "daily":
		printDaily(res)
	case "traffic":
		printTraffic(res)
	case "hourly":
		printHourly(res)
	case "response":
		printResponse(res)
	case "geo":
		printGeo(res)
	case "table1", "table2":
		printTables()
	case "peaks":
		printPeaks(res)
	case "cachemem":
		printCacheMem(res)
	case "failover":
		printFailover(res)
	case "redesign":
		printRedesign(res)
	case "sessions":
		printSessions()
	case "freshness":
		printFreshness(res)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func bar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// printHitRate runs the three-policy comparison (E1) on a reduced site so
// the conservative policy's broad invalidation sweeps stay tractable.
func printHitRate(base sim.Config) {
	fmt.Println("== E1: cache hit rate by propagation policy (paper: ~100% with DUP update-in-place, ~80% for the 1996 conservative scheme) ==")
	cfg := base
	cfg.SiteSpec = site.Spec{
		Sports: 4, EventsPerSport: 6, Athletes: 600, Countries: 16,
		NewsStories: 60, Days: 8, EventsPerAthlete: 1, Languages: []string{"en"},
	}
	cfg.TotalHits = base.TotalHits / 4
	cfg.Frames, cfg.NodesPerFrame = 1, 2
	cfg.Failures = nil
	for _, policy := range []core.Policy{core.PolicyUpdateInPlace, core.PolicyHybrid, core.PolicyInvalidate, core.PolicyConservative} {
		c := cfg
		c.Policy = policy
		r, err := sim.Run(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hitrate:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-22s hit rate %6.2f%%   (hits %d / misses %d, regens %d)\n",
			policy, 100*r.HitRate, r.DynamicHits, r.DynamicMisses, r.TotalRegens)
	}
	fmt.Println()
}

func printDaily(res *sim.Result) {
	fmt.Println("== E4 / Figure 20: hits by day (rescaled to paper volume, millions; paper peaks at 56.8M on day 7) ==")
	var max float64
	scaled := make([]float64, res.Days)
	for d, h := range res.HitsByDay {
		scaled[d] = float64(h) / res.Scale / 1e6
		if scaled[d] > max {
			max = scaled[d]
		}
	}
	var total float64
	for d, v := range scaled {
		fmt.Printf("  day %2d  %6.1fM  %s\n", d+1, v, bar(v, max, 40))
		total += v
	}
	fmt.Printf("  total   %6.1fM (paper: 634.7M)\n\n", total)
}

func printTraffic(res *sim.Result) {
	fmt.Println("== E5 / Figure 21: traffic by day (simulated page bytes, rescaled, GB) ==")
	var max float64
	scaled := make([]float64, res.Days)
	for d, b := range res.BytesByDay {
		scaled[d] = float64(b) / res.Scale / 1e9
		if scaled[d] > max {
			max = scaled[d]
		}
	}
	for d, v := range scaled {
		fmt.Printf("  day %2d  %7.1fGB  %s\n", d+1, v, bar(v, max, 40))
	}
	fmt.Println("  (shape tracks figure 21; absolute bytes reflect simulated page sizes, not 1998 image-heavy pages)")
	fmt.Println()
}

func printHourly(res *sim.Result) {
	fmt.Println("== E3 / Figure 18: average hits by hour of day (UTC) per complex ==")
	names := make([]string, 0, len(res.HourlyByComplex))
	for n := range res.HourlyByComplex {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		series := res.HourlyByComplex[name]
		var max float64
		for _, v := range series {
			if v > max {
				max = v
			}
		}
		fmt.Printf("  %s:\n", name)
		for h := 0; h < 24; h++ {
			fmt.Printf("    %02d:00  %7.0f  %s\n", h, series[h], bar(series[h], max, 30))
		}
	}
	fmt.Println()
}

func printResponse(res *sim.Result) {
	fmt.Println("== E6 / Figure 22: home-page response time by day, 28.8Kbps modem (seconds) ==")
	regions := []routing.Region{routing.RegionUS, routing.RegionJapan, routing.RegionEurope, routing.RegionAsia}
	fmt.Printf("  %-6s", "day")
	for _, r := range regions {
		fmt.Printf("%8s", r)
	}
	fmt.Println()
	for d := 0; d < res.Days; d++ {
		fmt.Printf("  %-6d", d+1)
		for _, r := range regions {
			fmt.Printf("%8.1f", res.ResponseByRegion[r][d])
		}
		fmt.Println()
	}
	fmt.Println("  (US days 7-9 blip from congestion external to the site, as in the paper)")
	fmt.Println()
}

func printGeo(res *sim.Result) {
	fmt.Println("== E7 / Figure 23: request breakdown by geographic location ==")
	var total int64
	for _, v := range res.GeoBreakdown {
		total += v
	}
	regions := []routing.Region{routing.RegionUS, routing.RegionJapan, routing.RegionEurope, routing.RegionAsia, routing.RegionOther}
	for _, r := range regions {
		v := res.GeoBreakdown[r]
		pct := 100 * float64(v) / float64(total)
		fmt.Printf("  %-8s %6.1f%%  %s\n", r, pct, bar(pct, 50, 40))
	}
	fmt.Println("\n  served by complex:")
	names := make([]string, 0, len(res.ComplexBreakdown))
	for n := range res.ComplexBreakdown {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := res.ComplexBreakdown[n]
		fmt.Printf("  %-12s %6.1f%%\n", n, 100*float64(v)/float64(total))
	}
	fmt.Println()
}

// competitorSites models tables 1 and 2: the Olympics site serves cached
// pages (near-zero server time, well-provisioned path); conventional ISP
// home pages of the era generated content per request and sat on more
// congested paths.
func competitorSites() (nonUSA, usa []netsim.SiteProfile) {
	oly := func(name string) netsim.SiteProfile {
		return netsim.SiteProfile{Name: name, Page: netsim.HomePage1998(), ServerTime: 2 * time.Millisecond, PathCongestion: 1.0}
	}
	nonUSA = []netsim.SiteProfile{
		{Name: "Japan-Nifty", Page: netsim.PageSpec{Bytes: 46 * 1024, Objects: 9}, ServerTime: 40 * time.Millisecond, PathCongestion: 1.05},
		oly("Japan-Olympics"),
		{Name: "AUS-OZMAIL", Page: netsim.PageSpec{Bytes: 52 * 1024, Objects: 14}, ServerTime: 150 * time.Millisecond, PathCongestion: 1.45},
		{Name: "AUS-Olympics", Page: netsim.HomePage1998(), ServerTime: 2 * time.Millisecond, PathCongestion: 1.28},
		{Name: "UK-DEMON", Page: netsim.PageSpec{Bytes: 44 * 1024, Objects: 8}, ServerTime: 60 * time.Millisecond, PathCongestion: 1.02},
		{Name: "UK-Olympics", Page: netsim.HomePage1998(), ServerTime: 2 * time.Millisecond, PathCongestion: 1.12},
	}
	usa = []netsim.SiteProfile{
		oly("USA-Olympics"),
		{Name: "Compuserve", Page: netsim.PageSpec{Bytes: 47 * 1024, Objects: 10}, ServerTime: 35 * time.Millisecond, PathCongestion: 1.05},
		{Name: "AOL", Page: netsim.PageSpec{Bytes: 55 * 1024, Objects: 16}, ServerTime: 90 * time.Millisecond, PathCongestion: 1.2},
		{Name: "MSN", Page: netsim.PageSpec{Bytes: 49 * 1024, Objects: 12}, ServerTime: 55 * time.Millisecond, PathCongestion: 1.1},
		{Name: "NETCOM", Page: netsim.PageSpec{Bytes: 48 * 1024, Objects: 11}, ServerTime: 45 * time.Millisecond, PathCongestion: 1.08},
		{Name: "AT&T", Page: netsim.PageSpec{Bytes: 48 * 1024, Objects: 11}, ServerTime: 45 * time.Millisecond, PathCongestion: 1.07},
	}
	return nonUSA, usa
}

func printTables() {
	nonUSA, usa := competitorSites()
	modem := netsim.Modem288()
	print := func(title string, sites []netsim.SiteProfile) {
		fmt.Println(title)
		fmt.Printf("  %-16s %18s %18s\n", "Site", "Mean resp (s)", "Transmit (Kbps)")
		for i, s := range sites {
			// 48 probes over the measurement day, as the paper's team did.
			m := netsim.MeasureSamples(modem, s, 48, 0.12, int64(100+i))
			fmt.Printf("  %-16s %11.2f +-%4.2f %18.2f\n", m.Site, m.MeanResponse, m.StdDev, m.TransmitRate)
		}
		fmt.Println()
	}
	print("== E8 / Table 1: response comparison, non-USA sites (28.8Kbps modem; paper: Olympics 16-29s, 17-26Kbps) ==", nonUSA)
	print("== E9 / Table 2: response comparison, USA sites (paper: Olympics 18.26s at 23.31Kbps, fastest of the six) ==", usa)
}

func printPeaks(res *sim.Result) {
	fmt.Println("== E10: peak request rates ==")
	pm := res.PeakMinute
	rescaled := float64(pm.Hits) / res.Scale
	fmt.Printf("  peak minute: day %d %02d:%02d UTC, %d simulated hits (~%.0f at paper volume; paper: 110,414 during day-14 figure skating)\n",
		pm.Day, pm.Hour, pm.Minute, pm.Hits, rescaled)
	fmt.Printf("  ski-jump spike (day 10): busiest minute %d hits (~%.0f at paper volume; paper: 98,000)\n",
		res.SkiJumpMinuteHits, float64(res.SkiJumpMinuteHits)/res.Scale)
	fmt.Printf("  share of that hour served by Tokyo: %.0f%% (paper: 72k of 98k = 73%%)\n\n", 100*res.SkiJumpTokyoShare)
}

func printCacheMem(res *sim.Result) {
	fmt.Println("== E11: cache memory ==")
	fmt.Printf("  single copy of all cached objects: %.1f MB across %d objects (paper: ~175MB; our pages are text-only)\n",
		float64(res.CachePeakBytesSingle)/1e6, res.CacheItemsSingle)
	fmt.Printf("  cache replacement runs: %d (paper: never needed)\n\n", res.Evictions)
}

func printFailover(res *sim.Result) {
	fmt.Println("== E12: availability under failure injection (node, frame, complex outages scheduled) ==")
	fmt.Printf("  availability: %.2f%% of sampled hours (paper: 100%%)\n", 100*res.Availability)
	fmt.Printf("  distinct outages observed by clients: %d\n", res.Outages)
	fmt.Printf("  rejected requests: %d of %d\n\n", res.Rejected, sumInt64(res.HitsByDay)+res.Rejected)
}

func printRedesign(res *sim.Result) {
	fmt.Println("== E13: 1996 hierarchy vs 1998 day-home-page design ==")
	cfg := workload.DefaultNavConfig()
	h96 := cfg.HitsPerVisit(workload.Design1996)
	h98 := cfg.HitsPerVisit(workload.Design1998)
	fmt.Printf("  analytic model:    1996 %.2f hits/visit, 1998 %.2f (ratio %.2fx)\n", h96, h98, h96/h98)

	// Monte Carlo over simulated user sessions navigating both structures.
	nav := workload.DefaultNavSimConfig()
	rng := rand.New(rand.NewSource(98))
	s96 := nav.SimulateVisits(workload.Design1996, 100_000, rng)
	s98 := nav.SimulateVisits(workload.Design1998, 100_000, rng)
	fmt.Printf("  session simulation: 1996 %.2f hits/visit (max %d), 1998 %.2f (ratio %.2fx)\n",
		s96.MeanHits, s96.MaxHits, s98.MeanHits, s96.MeanHits/s98.MeanHits)
	fmt.Printf("  1998 goals answered on the home page: %.0f%% of visits (paper: over 25%%)\n",
		100*float64(s98.HomeAnswered)/float64(s98.Visits))
	fmt.Printf("  1996 medal questions requiring hand-tallying event pages: %d (1998: %d — collation removed them)\n",
		s96.HandTallies, s98.HandTallies)

	var peak int64
	for _, h := range res.HitsByDay {
		if h > peak {
			peak = h
		}
	}
	observed := int64(float64(peak) / res.Scale)
	fmt.Printf("  observed peak day (rescaled): %dM hits; projected under 1996 design: %dM (paper: 56.8M observed vs >200M projected)\n\n",
		observed/1e6, cfg.ProjectedDailyHits(observed)/1e6)
}

func printFreshness(res *sim.Result) {
	fmt.Println("== E16: page regeneration volume and freshness ==")
	var max, sum int64
	for _, x := range res.RegenByDay {
		sum += x
		if x > max {
			max = x
		}
	}
	fmt.Printf("  pages regenerated: total %d, mean %.0f/day, peak %d/day (paper: avg 20k/day, peak 58k/day)\n",
		sum, float64(sum)/float64(res.Days), max)
	fmt.Printf("  update-to-visible latency: mean %.1fs, max %.1fs (paper bound: 60s)\n\n",
		res.FreshnessMeanSec, res.FreshnessMaxSec)
}

func sumInt64(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// writeCSVs dumps the main run's series for external plotting: one file per
// figure.
func writeCSVs(dir string, res *sim.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, header string, rows func(w *os.File) error) error {
		f, err := os.Create(dir + "/" + name)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := fmt.Fprintln(f, header); err != nil {
			return err
		}
		return rows(f)
	}
	if err := write("fig20_hits_by_day.csv", "day,hits,rescaled_millions", func(f *os.File) error {
		for d, h := range res.HitsByDay {
			if _, err := fmt.Fprintf(f, "%d,%d,%.2f\n", d+1, h, float64(h)/res.Scale/1e6); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write("fig21_bytes_by_day.csv", "day,bytes", func(f *os.File) error {
		for d, b := range res.BytesByDay {
			if _, err := fmt.Fprintf(f, "%d,%d\n", d+1, b); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write("fig18_hourly_by_complex.csv", "complex,hour,avg_hits", func(f *os.File) error {
		names := make([]string, 0, len(res.HourlyByComplex))
		for n := range res.HourlyByComplex {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			series := res.HourlyByComplex[n]
			for h := 0; h < 24; h++ {
				if _, err := fmt.Fprintf(f, "%s,%d,%.2f\n", n, h, series[h]); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write("fig22_response_by_day.csv", "region,day,seconds", func(f *os.File) error {
		for _, r := range []routing.Region{routing.RegionUS, routing.RegionJapan, routing.RegionEurope, routing.RegionAsia, routing.RegionOther} {
			for d, v := range res.ResponseByRegion[r] {
				if _, err := fmt.Fprintf(f, "%s,%d,%.2f\n", r, d+1, v); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return write("fig23_geo_breakdown.csv", "region,hits", func(f *os.File) error {
		for _, r := range []routing.Region{routing.RegionUS, routing.RegionJapan, routing.RegionEurope, routing.RegionAsia, routing.RegionOther} {
			if _, err := fmt.Fprintf(f, "%s,%d\n", r, res.GeoBreakdown[r]); err != nil {
				return err
			}
		}
		return nil
	})
}

// printSessions replays the paper's methodology end to end: generate
// correlated user sessions against the 1998 structure, write them through
// the Common Log Format pipeline, and run the same analyzer the team used
// on the 1996 logs. The reconstruction must recover the session model's
// parameters — the loop from traffic to design insight, closed.
func printSessions() {
	fmt.Println("== §3.1 methodology: session traffic through the access-log analyzer ==")
	d := db.New("sessions")
	g := odg.New()
	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	engine := core.NewEngine(g, cache.New("c"), core.WithGenerator(gen))
	var err error
	st, err = site.Build(site.DefaultSpec(), d, engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sessions:", err)
		os.Exit(1)
	}
	model := workload.New(workload.Config{Seed: 13, TotalHits: 1}, st)

	var buf bytes.Buffer
	w := weblog.NewWriter(&buf)
	base := time.Date(1998, 2, 8, 0, 0, 0, 0, time.UTC)
	tick := 0
	w.SetClock(func() time.Time { tick++; return base.Add(time.Duration(tick) * 2 * time.Second) })
	rng := rand.New(rand.NewSource(13))
	const visits = 20000
	for v := 0; v < visits; v++ {
		// Distinct clients so the analyzer separates visits; each client
		// browses one session.
		client := fmt.Sprintf("10.%d.%d.%d", v>>16&0xff, v>>8&0xff, v&0xff)
		for _, p := range model.SampleSession(rng, 2, model.SampleRegion(rng)) {
			w.Log(client, p, 200, 1800)
		}
	}
	w.Flush()
	rep, err := weblog.Analyze(&buf, 5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sessions:", err)
		os.Exit(1)
	}
	fmt.Printf("  sessions generated: %d (%d page fetches)\n", visits, rep.Entries)
	fmt.Printf("  analyzer reconstruction: %.2f hits/visit, %.0f%% satisfied at the entry page (paper: over 25%%)\n",
		rep.HitsPerVisit, 100*rep.EntrySatisfied)
	fmt.Printf("  top pages:\n")
	for _, pc := range rep.TopPages {
		fmt.Printf("    %-36s %7d\n", pc.Path, pc.Hits)
	}
	fmt.Println()
}
