package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/wire"
)

// wireBenchReport is the JSON body of BENCH_wire.json: the framed TCP
// transport driven over loopback the way the trigger monitor drives it in
// multi-process mode — a pipelined stream of page pushes into a node cache
// — with the client's RPC latency histogram summarized alongside the raw
// throughput.
type wireBenchReport struct {
	Seed int64 `json:"seed"`
	// Pushes is the number of TypePush RPCs issued; PayloadBytes the size
	// of each pushed page body (representative of a rendered result page).
	Pushes       int `json:"pushes"`
	PayloadBytes int `json:"payload_bytes"`
	// Concurrency is the number of pushing goroutines sharing the pooled
	// client; the in-flight window is sized to keep them all pipelined.
	Concurrency    int     `json:"concurrency"`
	WallMs         float64 `json:"wall_ms"`
	PushesPerSec   float64 `json:"pushes_per_sec"`
	PayloadMBPerS  float64 `json:"payload_mb_per_sec"`
	RPCP50Ms       float64 `json:"rpc_p50_ms"`
	RPCP99Ms       float64 `json:"rpc_p99_ms"`
	FramesSent     int64   `json:"frames_sent"`
	FramesReceived int64   `json:"frames_received"`
	BytesSent      int64   `json:"bytes_sent"`
	CallErrors     int64   `json:"call_errors"`
	Reconnects     int64   `json:"reconnects"`
	// InFlightHighWater is the window occupancy peak — how deep the
	// pipeline actually ran.
	InFlightHighWater int64 `json:"inflight_highwater"`
}

func (r wireBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// runWireBench pushes `pushes` seeded page-sized objects over a loopback
// wire server into a node cache and reports throughput plus the client's
// RPC latency quantiles. Every push must land: the bench fails if any key
// is missing from the receiving cache afterwards.
func runWireBench(seed int64, pushes, payloadBytes, concurrency int) (wireBenchReport, error) {
	rep := wireBenchReport{Seed: seed, Pushes: pushes,
		PayloadBytes: payloadBytes, Concurrency: concurrency}

	nodeCache := cache.New("bench-node")
	srv := wire.NewServer("bench-node")
	wire.RegisterStore(srv, nodeCache)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	defer srv.Close()

	m := wire.NewMetrics()
	client := wire.Dial("bench", addr.String(),
		wire.WithClientMetrics(m),
		wire.WithPoolSize(2),
		wire.WithMaxInFlight(4*concurrency),
		wire.WithCallTimeout(5*time.Second))
	sc := wire.NewStoreClient("bench-node", client)
	defer sc.Close()

	rng := rand.New(rand.NewSource(seed))
	body := make([]byte, payloadBytes)
	rng.Read(body)

	// Warm the pooled connection before the timed phase: a concurrent cold
	// start would make non-dialing pushers fail fast with a transient
	// unavailable error (the propagation plane's retry policy absorbs
	// those; the bench measures the steady state instead).
	if err := sc.Put(&cache.Object{Key: "/bench/warmup", Value: body}); err != nil {
		return rep, err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < pushes; i += concurrency {
				obj := &cache.Object{
					Key:         cache.Key(fmt.Sprintf("/bench/page-%06d", i)),
					Value:       body,
					ContentType: "text/html",
					Version:     int64(i + 1),
				}
				if err := sc.Put(obj); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return rep, firstErr
	}

	for i := 0; i < pushes; i++ {
		key := cache.Key(fmt.Sprintf("/bench/page-%06d", i))
		if _, ok := nodeCache.Get(key); !ok {
			return rep, fmt.Errorf("push %s acked but absent from node cache", key)
		}
	}

	rep.WallMs = float64(wall) / float64(time.Millisecond)
	secs := wall.Seconds()
	if secs > 0 {
		rep.PushesPerSec = float64(pushes) / secs
		rep.PayloadMBPerS = float64(pushes) * float64(payloadBytes) / (1 << 20) / secs
	}
	rep.RPCP50Ms = m.RPCSeconds.Quantile(0.50) * 1000
	rep.RPCP99Ms = m.RPCSeconds.Quantile(0.99) * 1000
	rep.FramesSent = m.FramesSent.Value()
	rep.FramesReceived = m.FramesReceived.Value()
	rep.BytesSent = m.BytesSent.Value()
	rep.CallErrors = m.CallErrors.Value()
	rep.Reconnects = m.Reconnects.Value()
	rep.InFlightHighWater = m.InFlight.Max()
	return rep, nil
}
