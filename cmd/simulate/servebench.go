package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/cluster"
	"dupserve/internal/dispatch"
	"dupserve/internal/httpserver"
	"dupserve/internal/overload"
)

// serveBenchCell is one measured configuration: a serve-path variant at one
// GOMAXPROCS setting.
type serveBenchCell struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Requests   int64   `json:"requests"`
	WallMs     float64 `json:"wall_ms"`
	Throughput float64 `json:"throughput_rps"`
	P50Us      float64 `json:"p50_us"`
	P99Us      float64 `json:"p99_us"`
	AllocsPerW float64 `json:"allocs_per_op"`
	HitRate    float64 `json:"hit_rate"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Stales     int64   `json:"stales"`
	Sheds      int64   `json:"sheds"`
	// ScalingEfficiency is throughput relative to the variant's own
	// 1-proc cell, divided by the proc count (1.0 = perfect scaling).
	ScalingEfficiency float64 `json:"scaling_efficiency"`
}

// serveBenchVariant is one serve-path implementation measured across the
// GOMAXPROCS ladder, twice: under the mixed hit/miss/stale workload and
// under a pure-hit workload that isolates the hit path itself.
type serveBenchVariant struct {
	Name string `json:"name"`
	// Shards and LockedPick describe the configuration under test.
	Shards     int              `json:"cache_shards"`
	LockedPick bool             `json:"locked_pick_path"`
	Cells      []serveBenchCell `json:"cells"`
	HitCells   []serveBenchCell `json:"hit_cells"`
}

// serveBenchReport is the JSON body of BENCH_serve.json: the saturation
// benchmark of the full serve path (dispatcher pick -> kill-switch node ->
// httpserver -> cache) under a Zipf page mix with hit/miss/stale traffic
// classes, for the pre-overhaul baseline (single cache lock, mutex pick
// path with live per-member load probes, per-request failover map) and the
// overhauled path (striped cache, RCU snapshot pick, zero-alloc hit path)
// in the same process and run.
type serveBenchReport struct {
	Seed       int64  `json:"seed"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	Nodes      int    `json:"nodes"`
	HotPages   int    `json:"hot_pages"`
	Workers    int    `json:"workers"`
	RequestsPC int64  `json:"requests_per_cell"`

	Baseline   serveBenchVariant `json:"baseline"`
	Overhauled serveBenchVariant `json:"overhauled"`

	// SpeedupAtMax is overhauled/baseline pure-hit throughput at the widest
	// GOMAXPROCS cell — the headline number the regression guard tracks.
	SpeedupAtMax float64 `json:"speedup_vs_baseline_at_max_procs"`
	// MixedSpeedupAtMax is the same ratio under the mixed workload, where
	// the (identical-cost) miss renders dilute the serve-path difference.
	MixedSpeedupAtMax float64 `json:"mixed_speedup_vs_baseline_at_max_procs"`
	// HitAllocsPerOp is the overhauled variant's worst pure-hit allocs/op
	// across cells; the zero-alloc hit path keeps it at zero.
	HitAllocsPerOp float64 `json:"overhauled_hit_allocs_per_op_worst"`
}

func (r serveBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

const (
	sbHotPages   = 256 // Zipf-distributed always-cached pages (hit class)
	sbVolatile   = 32  // pages invalidated before ~half their requests (miss class)
	sbStale      = 8   // pages whose renders collide on a tiny limiter (stale class)
	sbWorkers    = 32  // more in-flight requests than nodes, so saturation is real
	sbFrames     = 2   // two SP2 frames of 8 uniprocessors (paper sites ran 3-4)
	sbNodesPer   = 8
	sbNodes      = sbFrames * sbNodesPer
	sbPerCell    = 120_000
	sbRenderWork = 400 // xorshift iterations per render (persistent server program cost)
)

// sbStack is one serving complex wired for the benchmark, with the request
// paths pre-built so the measured loop contains no formatting of its own.
type sbStack struct {
	cx         *cluster.Complex
	hotPaths   []string
	volPaths   []string
	stalePaths []string
}

func buildServeStack(name string, shards int, lockedPick bool) *sbStack {
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		// Model the persistent server program: bounded CPU work, no I/O.
		// Stale-class pages render slowly (a complex query), which is what
		// makes their renders collide on the single slot and degrade.
		if strings.HasPrefix(string(key), "/en/stale/") {
			time.Sleep(100 * time.Microsecond)
		}
		x := uint64(88172645463325252)
		for i := 0; i < sbRenderWork; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		body := fmt.Sprintf("<html>%s v%d %d</html>", key, version, x&1)
		return &cache.Object{Key: key, Value: []byte(body), Version: version}, nil
	}
	cfg := cluster.Config{
		Name:          name,
		Frames:        sbFrames,
		NodesPerFrame: sbNodesPer,
		Generator:     gen,
		Version:       func() int64 { return 1 },
		CacheOptions:  []cache.Option{cache.WithShards(shards), cache.WithStaleRetention()},
		NodeOptions: func(string) []httpserver.Option {
			// One render slot, no queue: concurrent misses on the same node
			// collide and degrade to bounded staleness — the stale class.
			return []httpserver.Option{httpserver.WithOverload(
				overload.NewLimiter(overload.Config{MaxConcurrent: 1, MaxQueue: -1}),
				time.Minute)}
		},
	}
	var dOpts []dispatch.Option
	if lockedPick {
		dOpts = append(dOpts, dispatch.WithLockedPickPath())
	}
	cx := cluster.NewComplex(cfg, cluster.WithDispatcherOptions(dOpts...))
	s := &sbStack{cx: cx}
	for i := 0; i < sbHotPages; i++ {
		s.hotPaths = append(s.hotPaths, fmt.Sprintf("/en/hot/%03d", i))
	}
	for i := 0; i < sbVolatile; i++ {
		s.volPaths = append(s.volPaths, fmt.Sprintf("/en/vol/%d", i))
	}
	for i := 0; i < sbStale; i++ {
		s.stalePaths = append(s.stalePaths, fmt.Sprintf("/en/stale/%d", i))
	}
	return s
}

// prime renders the hit-class and stale-class pages into every node cache
// (the trigger monitor's prerender, compressed), and invalidates the
// stale-class pages so their retained copies are the only fallback.
func (s *sbStack) prime() {
	for i, p := range s.hotPaths {
		s.cx.Caches.BroadcastPut(&cache.Object{
			Key: cache.Key(p), Value: []byte(fmt.Sprintf("<html>hot %03d</html>", i)), Version: 1})
	}
	for i, p := range s.stalePaths {
		s.cx.Caches.BroadcastPut(&cache.Object{
			Key: cache.Key(p), Value: []byte(fmt.Sprintf("<html>stale %d</html>", i)), Version: 1})
		s.cx.Caches.BroadcastInvalidate(cache.Key(p))
	}
}

// runServeCell measures one configuration best-of-N: the repetition with
// the highest throughput is reported, which on a shared host estimates the
// least-interference run (the standard defence against co-tenant noise).
// pureHit restricts the workload to the always-cached Zipf set, isolating
// the hit path.
func runServeCell(s *sbStack, seed int64, procs int, pureHit bool) serveBenchCell {
	const reps = 3
	var best serveBenchCell
	for r := 0; r < reps; r++ {
		c := runServeCellOnce(s, seed+int64(r)*7919, procs, pureHit)
		if c.Throughput > best.Throughput {
			best = c
		}
	}
	return best
}

func runServeCellOnce(s *sbStack, seed int64, procs int, pureHit bool) serveBenchCell {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	var (
		issued  atomic.Int64
		hits    atomic.Int64
		misses  atomic.Int64
		stales  atomic.Int64
		sheds   atomic.Int64
		version atomic.Int64
	)
	version.Store(1)

	// Latency samples: every 16th request, into preallocated per-worker
	// slabs merged after the run.
	samples := make([][]float64, sbWorkers)
	for i := range samples {
		samples[i] = make([]float64, 0, sbPerCell/(16*sbWorkers)+8)
	}

	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < sbWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			zipf := rand.NewZipf(rng, 1.1, 1, sbHotPages-1)
			for {
				n := issued.Add(1)
				if n > sbPerCell {
					return
				}
				var path string
				mix := 0
				if !pureHit {
					mix = rng.Intn(100)
				}
				switch {
				case mix < 90: // hit class: Zipf over the hot set
					path = s.hotPaths[zipf.Uint64()]
				case mix < 98: // miss class: invalidate-then-serve half the time
					path = s.volPaths[rng.Intn(sbVolatile)]
					if rng.Intn(2) == 0 {
						version.Add(1)
						s.cx.Caches.BroadcastInvalidate(cache.Key(path))
					}
				default: // stale class: a slow render behind a 1-slot
					// limiter; concurrent requests degrade to the retained
					// copy (bounded staleness).
					path = s.stalePaths[rng.Intn(sbStale)]
					if rng.Intn(4) == 0 {
						s.cx.Caches.BroadcastInvalidate(cache.Key(path))
					}
				}
				sample := n%16 == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				_, outcome, _ := s.cx.Serve(path)
				if sample {
					samples[w] = append(samples[w], float64(time.Since(t0).Nanoseconds())/1e3)
				}
				switch outcome {
				case httpserver.OutcomeHit:
					hits.Add(1)
				case httpserver.OutcomeMiss:
					misses.Add(1)
				case httpserver.OutcomeStale:
					stales.Add(1)
				case httpserver.OutcomeShed:
					sheds.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	var all []float64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Float64s(all)
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	total := hits.Load() + misses.Load() + stales.Load() + sheds.Load()
	cell := serveBenchCell{
		GOMAXPROCS: procs,
		Requests:   total,
		WallMs:     float64(wall.Nanoseconds()) / 1e6,
		Throughput: float64(total) / wall.Seconds(),
		P50Us:      pct(0.50),
		P99Us:      pct(0.99),
		AllocsPerW: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(total),
		Hits:       hits.Load(),
		Misses:     misses.Load(),
		Stales:     stales.Load(),
		Sheds:      sheds.Load(),
	}
	if total > 0 {
		cell.HitRate = float64(hits.Load()) / float64(total)
	}
	return cell
}

func runServeVariant(name string, seed int64, shards int, lockedPick bool, procsLadder []int) serveBenchVariant {
	v := serveBenchVariant{Name: name, Shards: shards, LockedPick: lockedPick}
	s := buildServeStack(name, shards, lockedPick)
	s.prime()
	// Warm the path (memoized headers, limiter state) before measuring.
	for i := 0; i < 2000; i++ {
		s.cx.Serve(s.hotPaths[i%sbHotPages])
	}
	for _, p := range procsLadder {
		cell := runServeCell(s, seed+int64(p), p, false)
		if len(v.Cells) > 0 && v.Cells[0].GOMAXPROCS == 1 && v.Cells[0].Throughput > 0 {
			cell.ScalingEfficiency = (cell.Throughput / v.Cells[0].Throughput) / float64(p)
		} else if p == 1 {
			cell.ScalingEfficiency = 1
		}
		v.Cells = append(v.Cells, cell)
	}
	for _, p := range procsLadder {
		cell := runServeCell(s, seed+100+int64(p), p, true)
		if len(v.HitCells) > 0 && v.HitCells[0].GOMAXPROCS == 1 && v.HitCells[0].Throughput > 0 {
			cell.ScalingEfficiency = (cell.Throughput / v.HitCells[0].Throughput) / float64(p)
		} else if p == 1 {
			cell.ScalingEfficiency = 1
		}
		v.HitCells = append(v.HitCells, cell)
	}
	return v
}

// runServeBench measures both serve-path variants across the GOMAXPROCS
// ladder in one process and returns the report.
func runServeBench(seed int64) (serveBenchReport, error) {
	ladder := []int{1, 2, 4, 8}
	rep := serveBenchReport{
		Seed:       seed,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Nodes:      sbNodes,
		HotPages:   sbHotPages,
		Workers:    sbWorkers,
		RequestsPC: sbPerCell,
	}
	rep.Baseline = runServeVariant("baseline-locked-single-shard", seed, 1, true, ladder)
	rep.Overhauled = runServeVariant("striped-rcu-zeroalloc", seed, 64, false, ladder)

	bHit := rep.Baseline.HitCells[len(rep.Baseline.HitCells)-1]
	oHit := rep.Overhauled.HitCells[len(rep.Overhauled.HitCells)-1]
	if bHit.Throughput > 0 {
		rep.SpeedupAtMax = oHit.Throughput / bHit.Throughput
	}
	bLast := rep.Baseline.Cells[len(rep.Baseline.Cells)-1]
	oLast := rep.Overhauled.Cells[len(rep.Overhauled.Cells)-1]
	if bLast.Throughput > 0 {
		rep.MixedSpeedupAtMax = oLast.Throughput / bLast.Throughput
	}
	for _, c := range rep.Overhauled.HitCells {
		if c.AllocsPerW > rep.HitAllocsPerOp {
			rep.HitAllocsPerOp = c.AllocsPerW
		}
	}
	if bHit.Requests == 0 || oHit.Requests == 0 || bLast.Requests == 0 || oLast.Requests == 0 {
		return rep, fmt.Errorf("serve-bench: degenerate run")
	}
	return rep, nil
}
