package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/odg"
	"dupserve/internal/site"
	"dupserve/internal/trigger"
)

// propagationBenchReport is the JSON body of BENCH_propagation.json: one
// seeded Olympic update-burst run through the full trigger -> engine ->
// cache path under memoized assembly, with the identical burst replayed
// against the full-re-render baseline for the wall-clock comparison.
type propagationBenchReport struct {
	Seed   int64 `json:"seed"`
	Bursts int   `json:"bursts"`
	Pages  int   `json:"pages"`
	// ChangedFragments counts, independently of the engines, the fragment
	// vertices the ODG planner partitions out of each burst's affected set
	// — what incremental propagation must re-render.
	ChangedFragments int64 `json:"changed_fragments"`
	// RendersTotal / ReusesTotal are the assembled run's accounting:
	// renders must equal ChangedFragments (each changed fragment rendered
	// exactly once per batch) and reuses are cached-byte splices during
	// page assembly.
	RendersTotal int64 `json:"renders_total"`
	ReusesTotal  int64 `json:"reuses_total"`
	// FullRendersTotal is the baseline's fragment render count: every
	// containing page recursively re-rendered its fragments.
	FullRendersTotal int64   `json:"full_rerender_renders_total"`
	AssembledMs      float64 `json:"assembled_wall_ms"`
	FullReRenderMs   float64 `json:"full_rerender_wall_ms"`
	Speedup          float64 `json:"speedup"`
}

func (r propagationBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

type propStack struct {
	master *db.DB
	site   *site.Site
	engine *core.Engine
	mon    *trigger.Monitor
}

func buildPropStack(name string, fullReRender bool) (*propStack, error) {
	master := db.New(name)
	graph := odg.New()
	c := cache.New(name)
	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	engine := core.NewEngine(graph, c, core.WithGenerator(gen), core.WithParallelism(4))
	var err error
	st, err = site.Build(site.DefaultSpec(), master, engine)
	if err != nil {
		return nil, err
	}
	if fullReRender {
		st.Engine.SetFullReRender(true)
	} else {
		engine.SetAssembler(st.Engine)
	}
	if err := st.PrerenderAll(master.LSN(), func(o *cache.Object) { c.Put(o) }); err != nil {
		return nil, err
	}
	mon := trigger.New(trigger.Config{DB: master, Engine: engine},
		trigger.WithIndexer(st.Indexer), trigger.WithBatchWindow(0))
	if err := mon.Start(nil); err != nil {
		return nil, err
	}
	return &propStack{master: master, site: st, engine: engine, mon: mon}, nil
}

// runBursts replays the seeded burst sequence: final results and news
// stories, each flushed through the trigger as its own propagation batch.
// It returns the elapsed wall-clock time and, when countFragments is set,
// the planner's independent count of changed fragment vertices.
func (s *propStack) runBursts(seed int64, bursts int, countFragments bool) (time.Duration, int64, error) {
	rng := rand.New(rand.NewSource(seed))
	var changedFrags int64
	start := time.Now()
	for i := 0; i < bursts; i++ {
		ev := s.site.Events[rng.Intn(len(s.site.Events))]
		var tx db.Transaction
		var err error
		if rng.Intn(4) == 0 {
			tx, err = s.site.PublishNews(i, fmt.Sprintf("Story %d from %s", i, ev.Sport), "body")
		} else {
			tx, err = s.site.RecordResult(ev, ev.Participants[0], ev.Participants[1],
				ev.Participants[2], fmt.Sprintf("%d.%d", 200+rng.Intn(60), rng.Intn(10)))
		}
		if err != nil {
			return 0, 0, err
		}
		if countFragments {
			var ids []odg.NodeID
			for _, ch := range tx.Changes {
				ids = append(ids, s.site.Indexer(ch)...)
			}
			affected := s.engine.Graph().Affected(ids...)
			frags, _ := s.engine.Graph().Partition(affected)
			changedFrags += int64(len(frags))
		}
		s.mon.Flush()
	}
	return time.Since(start), changedFrags, nil
}

// runPropagationBench runs the assembled and full-re-render stacks over the
// identical seeded burst sequence and assembles the comparison report.
func runPropagationBench(seed int64, bursts int) (propagationBenchReport, error) {
	var rep propagationBenchReport
	rep.Seed = seed
	rep.Bursts = bursts

	asm, err := buildPropStack("prop-asm", false)
	if err != nil {
		return rep, err
	}
	defer asm.mon.Shutdown(nil)
	full, err := buildPropStack("prop-full", true)
	if err != nil {
		return rep, err
	}
	defer full.mon.Shutdown(nil)
	rep.Pages = len(asm.site.Pages())

	r0, u0 := asm.site.Engine.Accounting()
	asmDur, changed, err := asm.runBursts(seed, bursts, true)
	if err != nil {
		return rep, err
	}
	r1, u1 := asm.site.Engine.Accounting()

	f0, _ := full.site.Engine.Accounting()
	fullDur, _, err := full.runBursts(seed, bursts, false)
	if err != nil {
		return rep, err
	}
	f1, _ := full.site.Engine.Accounting()

	rep.ChangedFragments = changed
	rep.RendersTotal = r1 - r0
	rep.ReusesTotal = u1 - u0
	rep.FullRendersTotal = f1 - f0
	rep.AssembledMs = float64(asmDur.Microseconds()) / 1000
	rep.FullReRenderMs = float64(fullDur.Microseconds()) / 1000
	if rep.AssembledMs > 0 {
		rep.Speedup = rep.FullReRenderMs / rep.AssembledMs
	}
	return rep, nil
}
