// Globalgames: the full four-complex production topology from figures 5
// and 6 — master database, chained WAN replication (Nagano -> Tokyo and
// Schaumburg; Schaumburg -> Columbus and Bethesda), a trigger monitor and
// DUP engine per complex, and MSIRP routing — running live in one process.
//
// A result is recorded at the master; we watch it become visible at every
// complex within the freshness budget, then serve clients from three
// continents and confirm each lands on its nearest complex with a cache
// hit.
//
//	go run ./examples/globalgames
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dupserve/internal/deploy"
	"dupserve/internal/routing"
	"dupserve/internal/site"
)

func main() {
	spec := site.DefaultSpec()
	spec.Languages = []string{"en", "ja"}
	cfg := deploy.NaganoConfig(spec)

	fmt.Println("assembling four complexes with chained replication...")
	d, err := deploy.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := d.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer d.Shutdown(ctx)
	if err := d.Prime(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primed: %d pages in every serving cache of every complex\n\n", len(d.MasterSite.Pages()))

	// A result arrives at the master in Nagano.
	ev := d.MasterSite.Events[0]
	gold := ev.Participants[0]
	start := time.Now()
	if _, err := d.MasterSite.RecordResult(ev, gold, ev.Participants[1], ev.Participants[2], "251.6"); err != nil {
		log.Fatal(err)
	}
	if !d.WaitFresh(30 * time.Second) {
		log.Fatal("freshness timeout")
	}
	fmt.Printf("result %s (gold %s) visible at all four complexes in %v\n",
		ev.Key, gold, time.Since(start).Round(time.Millisecond))
	for _, cx := range d.Complexes() {
		fmt.Printf("  %-12s replica LSN %d, propagated LSN %d, pages updated %d\n",
			cx.Name, cx.Replica.LSN(), cx.Monitor().LastLSN(), cx.Monitor().Stats().PagesUpdated)
	}

	// Clients around the world read the event page.
	fmt.Println("\nclients:")
	page := "/en/sports/" + ev.Sport + "/" + ev.Key
	for _, region := range []routing.Region{routing.RegionJapan, routing.RegionUS, routing.RegionEurope} {
		obj, outcome, name, err := d.Serve(region, page)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s -> %-12s [%s] v%d (%d bytes)\n", region, name, outcome, obj.Version, len(obj.Value))
	}

	agg := d.Stats()
	fmt.Printf("\nglobal cache: %d hits, %d misses across all serving nodes\n", agg.Hits, agg.Misses)
}
