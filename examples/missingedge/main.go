// Missingedge: the consistency auditor catching a real ODG bug.
//
// Three pages render from a "scores" table. /scoreboard plays by the
// rules: it reads through the fragment context, so every row it touches
// becomes an ODG edge. /champion cheats — it reads team:alpha straight
// from the database, bypassing the context — so the graph never learns
// the page depends on that row. /history declares a dependency on a row
// it never reads.
//
// When team:alpha's score changes, DUP refreshes /scoreboard in place
// and leaves /champion alone: the cache keeps serving the old champion
// as a "hit" forever. No amount of propagation testing notices, because
// propagation did exactly what the (wrong) graph said. The audit sweep
// does notice, twice over: the shadow render proves /champion's served
// bytes match no explainable state (incoherent), and the read-tracking
// completeness diff names the exact missing edge — and /history's
// superfluous one.
//
//	go run ./examples/missingedge
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"dupserve/internal/audit"
	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/fragment"
	"dupserve/internal/httpserver"
	"dupserve/internal/odg"
)

const (
	pageScoreboard = "/scoreboard"
	pageChampion   = "/champion"
	pageHistory    = "/history"
)

// buildSite defines the three pages against database, reporting
// dependency registrations to reg. It has the audit.SiteBuilder shape, so
// the same builder constructs both the live site and the auditor's shadow
// site.
func buildSite(database *db.DB, reg fragment.Registrar) (*fragment.Engine, []string, error) {
	fe := fragment.New(fragment.Config{DB: database, Registrar: reg})

	// Correct: every read goes through the context, so the ODG sees it.
	fe.Define(pageScoreboard, func(ctx *fragment.Context) ([]byte, error) {
		rows, err := ctx.Scan("scores", "team:")
		if err != nil {
			return nil, err
		}
		body := "<h1>Scoreboard</h1>"
		for _, r := range rows {
			body += fmt.Sprintf("<p>%s: %s</p>", r.Key, r.Cols["points"])
		}
		return []byte(body), nil
	})

	// THE BUG: the renderer reads team:alpha directly from the database,
	// bypassing the context. The dependence graph never learns this page
	// depends on that row, so updates to it will not propagate here.
	fe.Define(pageChampion, func(ctx *fragment.Context) ([]byte, error) {
		row, _, err := database.Get("scores", "team:alpha")
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("<h1>Champion</h1><p>alpha at %s points</p>", row.Cols["points"])), nil
	})

	// The opposite mistake: a declared dependency on a row the renderer
	// never reads. Harmless to correctness, but every write to that row
	// would regenerate this page for nothing.
	fe.Define(pageHistory, func(ctx *fragment.Context) ([]byte, error) {
		ctx.DependOn(odg.NodeID(db.RowID("scores", "team:retired")))
		return []byte("<h1>History</h1><p>No champions retired yet.</p>"), nil
	})

	return fe, []string{pageScoreboard, pageChampion, pageHistory}, nil
}

// runDemo builds the buggy site, propagates one change, serves every page
// through an audited node, and returns the sweep's report.
func runDemo(out io.Writer) (*audit.Report, error) {
	master := db.New("master")
	master.CreateTable("scores")
	if _, err := master.Commit(master.NewTx().
		Put("scores", "team:alpha", map[string]string{"points": "12"}).
		Put("scores", "team:bravo", map[string]string{"points": "9"})); err != nil {
		return nil, err
	}

	// Live plant: one cache, a DUP engine over the live graph, the site's
	// renderers, and a serving node tapped by the auditor.
	graph := odg.New()
	pages := cache.New("pages")
	var fe *fragment.Engine
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return fe.Generate(key, version)
	}
	engine := core.NewEngine(graph, pages, core.WithGenerator(gen))
	fe, pagePaths, err := buildSite(master, engine)
	if err != nil {
		return nil, err
	}
	for _, p := range pagePaths {
		obj, err := fe.Generate(cache.Key(p), master.LSN())
		if err != nil {
			return nil, err
		}
		pages.Put(obj)
	}

	aud := audit.New(audit.Config{Name: "missingedge", Replica: master, Build: buildSite})
	srv := httpserver.New("node0", pages, gen, master.LSN,
		httpserver.WithResponseTap(aud.Observe))

	// The championship turns: team:alpha's score changes, and DUP
	// propagates along the graph it was given. /scoreboard refreshes in
	// place; /champion — its dependency undeclared — keeps the old bytes.
	tx, err := master.Commit(master.NewTx().
		Put("scores", "team:alpha", map[string]string{"points": "15"}))
	if err != nil {
		return nil, err
	}
	changed := make([]odg.NodeID, 0, len(tx.Changes))
	for _, c := range tx.Changes {
		changed = append(changed, odg.NodeID(c.ChangeID()))
	}
	res := engine.OnChange(tx.LSN, changed...)
	fmt.Fprintf(out, "change at LSN %d: %d affected, %d updated in place\n",
		tx.LSN, res.Affected, res.Updated)

	// Every page serves as a cache hit — including the stale champion.
	for _, p := range pagePaths {
		if _, _, err := srv.Serve(p); err != nil {
			return nil, err
		}
	}

	rep, err := aud.Sweep()
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(out)
	if err := rep.Write(out); err != nil {
		return nil, err
	}
	return rep, nil
}

func main() {
	rep, err := runDemo(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if rep.OK() {
		log.Fatal("missingedge: the audit failed to flag the planted bug")
	}
	fmt.Println("\nthe audit caught the planted bug: /champion reads a row the ODG never declared")
}
