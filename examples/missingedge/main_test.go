package main

import (
	"bytes"
	"io"
	"testing"

	"dupserve/internal/audit"
)

// TestAuditFlagsPlantedBugExactly proves the auditor flags the planted
// defects — and nothing else. The missing edge and the incoherent page
// are named precisely; the well-behaved /scoreboard stays clean.
func TestAuditFlagsPlantedBugExactly(t *testing.T) {
	rep, err := runDemo(io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	if rep.OK() {
		t.Fatal("report OK despite the planted missing edge")
	}
	if rep.Pages != 3 || rep.Samples != 3 {
		t.Fatalf("pages=%d samples=%d, want 3 and 3", rep.Pages, rep.Samples)
	}

	// Exactly one incoherent sample, and it is /champion.
	if rep.Incoherent != 1 {
		t.Fatalf("incoherent=%d, want exactly 1", rep.Incoherent)
	}
	if len(rep.IncoherentPages) != 1 || rep.IncoherentPages[0] != pageChampion {
		t.Fatalf("incoherent pages = %v, want [%s]", rep.IncoherentPages, pageChampion)
	}
	// The other two samples are coherent — no collateral verdicts.
	if rep.Coherent != 2 || rep.BoundedStale != 0 || rep.ViolatingStale != 0 ||
		rep.Shed != 0 || rep.Unchecked != 0 {
		t.Fatalf("collateral verdicts: %+v", rep)
	}

	// Exactly one missing edge, naming the bypassed row.
	want := audit.Edge{Page: pageChampion, Vertex: "db:scores:team:alpha"}
	if len(rep.MissingEdges) != 1 || rep.MissingEdges[0] != want {
		t.Fatalf("missing edges = %v, want [%+v]", rep.MissingEdges, want)
	}
	// Exactly one superfluous edge, naming the never-read declaration.
	wantSup := audit.Edge{Page: pageHistory, Vertex: "db:scores:team:retired"}
	if len(rep.SuperfluousEdges) != 1 || rep.SuperfluousEdges[0] != wantSup {
		t.Fatalf("superfluous edges = %v, want [%+v]", rep.SuperfluousEdges, wantSup)
	}
}

// TestDemoDeterministic runs the demo twice and requires byte-identical
// reports — the fixture is usable as a golden reference.
func TestDemoDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := runDemo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := runDemo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("reports differ:\n--- first\n%s--- second\n%s", a.String(), b.String())
	}
}
