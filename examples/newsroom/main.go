// Newsroom: fragment composition plus the asynchronous trigger monitor.
//
// A front page embeds two fragments — a headlines list and a stock-style
// medals ticker. Stories and scores are committed to the database; the
// trigger monitor picks the changes off the database's feed, runs DUP, and
// the fragments and every page embedding them are regenerated in place.
// The dependency graph is never written by hand: it is learned from what
// each renderer reads.
//
//	go run ./examples/newsroom
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/fragment"
	"dupserve/internal/odg"
	"dupserve/internal/trigger"
)

func main() {
	database := db.New("newsroom")
	database.CreateTable("stories")
	database.CreateTable("scores")

	pages := cache.New("pages")
	graph := odg.New()

	var engine *core.Engine
	var fragments *fragment.Engine
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return fragments.Generate(key, version)
	}
	engine = core.NewEngine(graph, pages, core.WithGenerator(gen))
	fragments = fragment.New(fragment.Config{DB: database, Registrar: engine})

	// Fragments: headlines (scans the stories table) and a ticker (reads
	// one row).
	fragments.Define("frag:headlines", func(ctx *fragment.Context) ([]byte, error) {
		rows, err := ctx.Scan("stories", "")
		if err != nil {
			return nil, err
		}
		ctx.Printf("<ul>")
		for _, r := range rows {
			ctx.Printf("<li>%s</li>", r.Cols["headline"])
		}
		ctx.Printf("</ul>")
		return ctx.Bytes(), nil
	})
	fragments.Define("frag:ticker", func(ctx *fragment.Context) ([]byte, error) {
		row, ok, err := ctx.Get("scores", "medals")
		if err != nil {
			return nil, err
		}
		if !ok {
			return []byte("<em>no medals yet</em>"), nil
		}
		return []byte("<em>medal count: " + row.Cols["total"] + "</em>"), nil
	})

	// Two pages embed the fragments.
	fragments.Define("/front", func(ctx *fragment.Context) ([]byte, error) {
		ctx.Printf("<h1>Front page</h1>")
		if err := ctx.IncludeInto("frag:headlines"); err != nil {
			return nil, err
		}
		if err := ctx.IncludeInto("frag:ticker"); err != nil {
			return nil, err
		}
		return ctx.Bytes(), nil
	})
	fragments.Define("/scores", func(ctx *fragment.Context) ([]byte, error) {
		ctx.Printf("<h1>Scores</h1>")
		if err := ctx.IncludeInto("frag:ticker"); err != nil {
			return nil, err
		}
		return ctx.Bytes(), nil
	})

	// Prime the cache; registration happens as a side effect of rendering.
	for _, p := range []string{"/front", "/scores"} {
		obj, err := fragments.Generate(cache.Key(p), database.LSN())
		if err != nil {
			log.Fatal(err)
		}
		pages.Put(obj)
	}

	// The indexer adds the table-scan membership index for story inserts.
	indexer := func(c db.Change) []odg.NodeID {
		ids := []odg.NodeID{odg.NodeID(c.ChangeID())}
		if c.Table == "stories" && (c.Created || c.Op == db.OpDelete) {
			ids = append(ids, odg.NodeID(fragment.IndexID("stories", "")))
		}
		return ids
	}
	mon := trigger.New(trigger.Config{DB: database, Engine: engine},
		trigger.WithIndexer(indexer),
		trigger.WithBatchWindow(5*time.Millisecond))
	if err := mon.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer mon.Shutdown(context.Background())

	show := func(label string) {
		fmt.Printf("\n-- %s --\n", label)
		for _, p := range []string{"/front", "/scores"} {
			obj, _ := pages.Peek(cache.Key(p))
			fmt.Printf("%-8s v%-2d %s\n", p, obj.Version, obj.Value)
		}
	}
	show("initial")

	// A story publishes: the headlines fragment and /front change; /scores
	// is untouched.
	if _, err := database.Commit(database.NewTx().
		Put("stories", "s1", map[string]string{"headline": "Lipinski lands the triple loop"})); err != nil {
		log.Fatal(err)
	}
	mon.Flush()
	show("after story s1")

	// A score update: the ticker fragment and BOTH pages change.
	if _, err := database.Commit(database.NewTx().
		Put("scores", "medals", map[string]string{"total": "7"})); err != nil {
		log.Fatal(err)
	}
	mon.Flush()
	show("after medal update")

	st := mon.Stats()
	fmt.Printf("\ntrigger monitor: %d batches, %d pages updated, freshness max %.3fs\n",
		st.Batches, st.PagesUpdated, st.LatencyMax)
	fmt.Printf("cache hit rate so far: %s\n", ratio(pages.Stats()))
}

func ratio(s cache.Stats) string {
	return fmt.Sprintf("%.0f%% (%d hits / %d misses)", 100*s.HitRate(), s.Hits, s.Misses)
}
