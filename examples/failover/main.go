// Failover: elegant degradation through the full chain — serving node,
// SP2 frame, Network Dispatcher pool, and complex-level MSIRP rerouting.
//
// Two complexes serve behind a router. We kill a node, then a frame, then
// an entire complex, sending traffic continuously; every request keeps
// succeeding, and the output shows where it was served from at each stage.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"dupserve/internal/cache"
	"dupserve/internal/cluster"
	"dupserve/internal/core"
	"dupserve/internal/routing"
)

func main() {
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return &cache.Object{Key: key, Value: []byte("page " + string(key)), Version: version}, nil
	}
	_ = core.PolicyUpdateInPlace // the serving path here regenerates on miss

	build := func(name string) *cluster.Complex {
		return cluster.NewComplex(cluster.Config{
			Name: name, Frames: 2, NodesPerFrame: 2,
			Generator: gen, Version: func() int64 { return 1 },
		})
	}
	east := build("east")
	west := build("west")

	router := routing.NewRouter(routing.NumAddresses)
	router.AddComplex("east", east, map[routing.Region]int{"clients": 10})
	router.AddComplex("west", west, map[routing.Region]int{"clients": 30})
	if err := router.AdvertiseSpread([]string{"east", "west"}, 10, 20); err != nil {
		log.Fatal(err)
	}

	drive := func(label string, n int) {
		byComplex := map[string]int{}
		failures := 0
		for i := 0; i < n; i++ {
			_, _, complexName, err := router.Request("clients", "/home")
			if err != nil {
				failures++
				continue
			}
			byComplex[complexName]++
		}
		fmt.Printf("%-28s east=%3d west=%3d failures=%d  (east healthy nodes: %d)\n",
			label, byComplex["east"], byComplex["west"], failures, east.Healthy())
	}

	drive("all healthy", 100)

	// Stage 1: one node dies. The dispatcher's advisor pulls it on the
	// first failed request; the other three nodes absorb the load.
	east.Frames[0].Nodes[0].Fail()
	drive("east loses one node", 100)

	// Stage 2: a whole frame goes down.
	east.FailFrame(1)
	drive("east loses a frame too", 100)

	// Stage 3: the complex is gone. MSIRP reroutes everything to west.
	east.FailAll()
	drive("east complex down", 100)

	// Recovery: nodes come back (cold caches), advisors restore them, and
	// the router re-enables the complex.
	east.RecoverAll()
	router.SetComplexUp("east", true)
	drive("east recovered", 100)

	st := router.Stats()
	fmt.Printf("\nrouter: %d requests, %d reroutes, %d rejected (paper: zero downtime)\n",
		st.Requests, st.Reroutes, st.Rejected)
	ds := east.Dispatcher.Stats()
	fmt.Printf("east dispatcher: %d forwarded, %d failovers\n", ds.Forwarded, ds.Failovers)
}
