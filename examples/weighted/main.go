// Weighted: edge weights and the staleness threshold (section 2 of the
// paper: "it is often possible to save considerable CPU cycles by allowing
// pages to remain in the cache which are only slightly obsolete").
//
// A stats page depends strongly (weight 5) on final results and weakly
// (weight 1) on a live ticker. With a threshold of 5, ticker updates
// accumulate staleness without triggering regeneration until five of them
// have landed — while a final result regenerates the page immediately.
//
//	go run ./examples/weighted
package main

import (
	"fmt"
	"log"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/odg"
)

func main() {
	pages := cache.New("pages")
	graph := odg.New()

	renders := 0
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		renders++
		body := fmt.Sprintf("stats page (render #%d, as of update %d)", renders, version)
		return &cache.Object{Key: key, Value: []byte(body), Version: version}, nil
	}
	engine := core.NewEngine(graph, pages,
		core.WithGenerator(gen),
		core.WithStalenessThreshold(5))

	graph.AddNode("/stats", odg.KindObject)
	must(graph.AddWeightedEdge("db:ticker", "/stats", 1)) // minor dependence
	must(graph.AddWeightedEdge("db:final", "/stats", 5))  // major dependence
	pages.Put(&cache.Object{Key: "/stats", Value: []byte("initial"), Version: 0})

	fmt.Println("threshold = 5; ticker edge weight = 1; final-result edge weight = 5")
	fmt.Println()
	version := int64(0)
	for i := 1; i <= 7; i++ {
		version++
		res := engine.OnChange(version, "db:ticker")
		obj, _ := pages.Peek("/stats")
		fmt.Printf("ticker update %d: updated=%d deferred=%d pending=%.0f  -> %q\n",
			i, res.Updated, res.Deferred, engine.PendingStaleness("/stats"), obj.Value)
	}

	fmt.Println()
	version++
	res := engine.OnChange(version, "db:final")
	obj, _ := pages.Peek("/stats")
	fmt.Printf("final result:    updated=%d (weight 5 crosses the threshold at once) -> %q\n",
		res.Updated, obj.Value)

	fmt.Printf("\ntotal renders: %d for 8 updates — the threshold saved %d regenerations\n",
		renders, 8-renders)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
