// Quickstart: the smallest complete DUP loop.
//
// We cache two rendered pages, declare what database rows they depend on,
// change one row, and let Data Update Propagation regenerate exactly the
// affected page directly in the cache — the page never leaves the cache,
// so no request ever misses on it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/odg"
)

func main() {
	// 1. A database with one table of results.
	database := db.New("master")
	database.CreateTable("results")
	if _, err := database.Commit(database.NewTx().
		Put("results", "luge", map[string]string{"gold": "GER"}).
		Put("results", "curling", map[string]string{"gold": "SUI"})); err != nil {
		log.Fatal(err)
	}

	// 2. A cache, a dependence graph, and a generator that renders a page
	// from the row it is named after.
	pages := cache.New("pages")
	graph := odg.New()
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		row, _, err := database.Get("results", string(key[1:]))
		if err != nil {
			return nil, err
		}
		body := fmt.Sprintf("<h1>%s</h1><p>Gold: %s</p>", key[1:], row.Cols["gold"])
		return &cache.Object{Key: key, Value: []byte(body), Version: version}, nil
	}
	engine := core.NewEngine(graph, pages, core.WithGenerator(gen))

	// 3. Render both pages, cache them, and register their dependencies —
	// each page depends on its row.
	for _, name := range []string{"luge", "curling"} {
		key := cache.Key("/" + name)
		obj, err := gen(key, database.LSN())
		if err != nil {
			log.Fatal(err)
		}
		pages.Put(obj)
		engine.RegisterObject(key, []odg.NodeID{odg.NodeID(db.RowID("results", name))})
	}
	show(pages, "/luge")
	show(pages, "/curling")

	// 4. New result arrives: the luge row changes.
	tx, err := database.Commit(database.NewTx().
		Put("results", "luge", map[string]string{"gold": "AUT"}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- luge result changes (LSN %d) --\n\n", tx.LSN)

	// 5. DUP: find the affected pages and update them in place.
	res := engine.OnChange(tx.LSN, odg.NodeID(tx.Changes[0].ChangeID()))
	fmt.Printf("propagation: %d affected, %d updated in place\n\n", res.Affected, res.Updated)

	show(pages, "/luge")    // fresh content, version 3
	show(pages, "/curling") // untouched — DUP knew it was unaffected
	fmt.Printf("\ncache stats: %+v\n", pages.Stats())
}

func show(c *cache.Cache, key cache.Key) {
	obj, ok := c.Get(key)
	if !ok {
		fmt.Printf("%-10s MISS\n", key)
		return
	}
	fmt.Printf("%-10s v%d  %s\n", key, obj.Version, obj.Value)
}
