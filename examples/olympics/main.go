// Olympics: the end-to-end mini site — database, taxonomy, fragment
// renderers, DUP engine, trigger monitor, and a serving node — with live
// result updates flowing through while we read pages from the cache.
//
//	go run ./examples/olympics
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/httpserver"
	"dupserve/internal/odg"
	"dupserve/internal/site"
	"dupserve/internal/trigger"
)

func main() {
	master := db.New("nagano")
	graph := odg.New()
	serving := cache.New("up0")

	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	engine := core.NewEngine(graph, serving, core.WithGenerator(gen))

	var err error
	st, err = site.Build(site.DefaultSpec(), master, engine)
	if err != nil {
		log.Fatal(err)
	}
	engine.SetAssembler(st.Engine)
	fmt.Printf("built site: %d dynamic pages, %d events, %d athletes\n",
		len(st.Pages()), len(st.Events), len(st.AthleteIDs))

	// Prime the cache and start the trigger monitor.
	if err := st.PrerenderAll(master.LSN(), func(o *cache.Object) { serving.Put(o) }); err != nil {
		log.Fatal(err)
	}
	serving.ResetCounters()
	mon := trigger.New(trigger.Config{DB: master, Engine: engine},
		trigger.WithIndexer(st.Indexer),
		trigger.WithBatchWindow(5*time.Millisecond))
	if err := mon.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer mon.Shutdown(context.Background())

	// One serving node in front of the cache.
	node := httpserver.New("up0", serving, gen, master.LSN)

	ev := st.Events[0]
	eventPage := "/en/sports/" + ev.Sport + "/" + ev.Key
	athletePage := "/en/athletes/" + ev.Participants[0]

	fetch := func(path string) {
		obj, outcome, err := node.Serve(path)
		if err != nil {
			log.Fatal(err)
		}
		line := string(obj.Value)
		if len(line) > 96 {
			line = line[:96] + "..."
		}
		fmt.Printf("  GET %-34s [%s v%d] %s\n", path, outcome, obj.Version, line)
	}

	fmt.Println("\nbefore the event:")
	fetch(eventPage)
	fetch(athletePage)

	// The event runs: two intermediate standings, then the final.
	if _, err := st.RecordPartial(ev, ev.Participants[3], "118.2"); err != nil {
		log.Fatal(err)
	}
	mon.Flush()
	fmt.Println("\nmid-event (leader on the board):")
	fetch(eventPage)

	gold, silver, bronze := ev.Participants[0], ev.Participants[4], ev.Participants[2]
	if _, err := st.RecordResult(ev, gold, silver, bronze, "251.6"); err != nil {
		log.Fatal(err)
	}
	if _, err := st.PublishNews(0, "Gold decided in "+ev.Sport, "A famous victory."); err != nil {
		log.Fatal(err)
	}
	mon.Flush()

	fmt.Println("\nafter the final result and a news story:")
	fetch(eventPage)
	fetch(athletePage)
	fetch("/en/medals")
	fetch(fmt.Sprintf("/en/home/day%02d", st.CurrentDay()))
	fetch("/en/news/n000")

	stats := serving.Stats()
	fmt.Printf("\nevery request above was a cache hit: %d hits, %d misses\n", stats.Hits, stats.Misses)
	ms := mon.Stats()
	fmt.Printf("trigger monitor: %d transactions propagated, %d pages updated in place\n",
		ms.Transactions, ms.PagesUpdated)
}
