// Package dupserve's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (see DESIGN.md's experiment index), plus
// ablations for the design choices DUP rests on. The full series outputs
// are produced by cmd/simulate; these benches measure the per-operation
// costs that generate them, so `go test -bench . -benchmem` doubles as the
// performance regression suite.
package dupserve

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/core"
	"dupserve/internal/db"
	"dupserve/internal/dispatch"
	"dupserve/internal/httpserver"
	"dupserve/internal/netsim"
	"dupserve/internal/odg"
	"dupserve/internal/routing"
	"dupserve/internal/sim"
	"dupserve/internal/site"
	"dupserve/internal/trigger"
	"dupserve/internal/workload"
)

// buildStack wires db + site + engine + one serving cache, primed.
func buildStack(b *testing.B, policy core.Policy) (*site.Site, *core.Engine, *cache.Cache) {
	b.Helper()
	master := db.New("bench")
	graph := odg.New()
	c := cache.New("bench")
	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	var opts []core.Option
	switch policy {
	case core.PolicyInvalidate:
		opts = []core.Option{core.WithPolicy(policy)}
	case core.PolicyConservative:
		opts = []core.Option{core.WithPolicy(policy),
			core.WithConservativeMapper(func(id odg.NodeID) []string { return st.ConservativeMapper(id) })}
	default:
		opts = []core.Option{core.WithGenerator(gen)}
	}
	engine := core.NewEngine(graph, c, opts...)
	var err error
	st, err = site.Build(site.DefaultSpec(), master, engine)
	if err != nil {
		b.Fatal(err)
	}
	engine.SetAssembler(st.Engine)
	if err := st.PrerenderAll(master.LSN(), func(o *cache.Object) { c.Put(o) }); err != nil {
		b.Fatal(err)
	}
	return st, engine, c
}

// propagateLast pushes the transaction through the engine as the trigger
// monitor would.
func propagateLast(st *site.Site, e *core.Engine, tx db.Transaction) core.Result {
	var changed []odg.NodeID
	for _, ch := range tx.Changes {
		changed = append(changed, st.Indexer(ch)...)
	}
	return e.OnChange(tx.LSN, changed...)
}

// --- E1: hit-rate policies (full series: cmd/simulate -experiment hitrate)

func BenchmarkE1_HitRates(b *testing.B) {
	for _, pc := range []struct {
		name   string
		policy core.Policy
	}{
		{"UpdateInPlace", core.PolicyUpdateInPlace},
		{"Invalidate", core.PolicyInvalidate},
		{"Conservative", core.PolicyConservative},
	} {
		b.Run(pc.name, func(b *testing.B) {
			st, engine, c := buildStack(b, pc.policy)
			ev := st.Events[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := st.RecordPartial(ev, ev.Participants[i%len(ev.Participants)], fmt.Sprint(i))
				if err != nil {
					b.Fatal(err)
				}
				propagateLast(st, engine, tx)
				// One request for the affected event page, as a client
				// arriving right after the update.
				c.Get(cache.Key("/en/sports/" + ev.Sport + "/" + ev.Key))
			}
		})
	}
}

// --- E2: server throughput (paper: cached dynamic pages at static-page
// rates; CGI orders of magnitude slower)

func BenchmarkE2_ServerThroughput(b *testing.B) {
	page := make([]byte, 10*1024)
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		v := make([]byte, len(page))
		copy(v, page)
		return &cache.Object{Key: key, Value: v}, nil
	}
	b.Run("Static", func(b *testing.B) {
		s := httpserver.New("n", cache.New("c"), nil, nil)
		s.SetStatic("/s", page, "text/html")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Serve("/s")
		}
	})
	b.Run("CachedDynamic", func(b *testing.B) {
		c := cache.New("c")
		c.Put(&cache.Object{Key: "/d", Value: page})
		s := httpserver.New("n", c, gen, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Serve("/d")
		}
	})
	b.Run("UncachedDynamic", func(b *testing.B) {
		s := httpserver.New("n", cache.New("c"), gen, nil, httpserver.WithoutCache())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Serve("/d")
		}
	})
	b.Run("UncachedCGI", func(b *testing.B) {
		s := httpserver.New("n", cache.New("c"), gen, nil,
			httpserver.WithoutCache(), httpserver.WithOverhead(httpserver.SpinOverhead(200000)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Serve("/d")
		}
	})
}

// --- E3/E4/E5/E7: workload generation feeding figures 18, 20, 21, 23

func BenchmarkE3_WorkloadSampling(b *testing.B) {
	st, _, _ := buildStack(b, core.PolicyUpdateInPlace)
	m := workload.New(workload.Config{Seed: 1, TotalHits: 1 << 20, Spikes: workload.PaperSpikes()}, st)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day := 1 + i%st.Spec.Days
		region := m.SampleRegion(rng)
		_ = m.HitsForHour(day, i%24, region)
		_ = m.SamplePage(rng, day, region)
	}
}

func BenchmarkE4_SimulatedDay(b *testing.B) {
	// One full simulated day at toy scale per iteration: the unit of
	// figures 20/21.
	spec := site.Spec{
		Sports: 2, EventsPerSport: 2, Athletes: 40, Countries: 4,
		NewsStories: 5, Days: 1, EventsPerAthlete: 1, Languages: []string{"en"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Seed: int64(i), SiteSpec: spec, TotalHits: 2000,
			Policy: core.PolicyUpdateInPlace, Frames: 1, NodesPerFrame: 2,
			PartialsPerEvent: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6/E8/E9: response-time model behind figure 22 and tables 1-2

func BenchmarkE6_ResponseModel(b *testing.B) {
	link := netsim.Modem288()
	page := netsim.HomePage1998()
	for i := 0; i < b.N; i++ {
		netsim.FetchTime(link, page, 2*time.Millisecond, 1.3)
	}
}

func BenchmarkE8_ResponseNonUSA(b *testing.B) {
	link := netsim.Modem288()
	profile := netsim.SiteProfile{Name: "olympics", Page: netsim.HomePage1998(), ServerTime: 2 * time.Millisecond, PathCongestion: 1}
	for i := 0; i < b.N; i++ {
		netsim.Measure(link, profile)
	}
}

func BenchmarkE9_ResponseUSA(b *testing.B) {
	link := netsim.Modem288()
	profile := netsim.SiteProfile{Name: "aol", Page: netsim.PageSpec{Bytes: 55 * 1024, Objects: 16}, ServerTime: 90 * time.Millisecond, PathCongestion: 1.2}
	for i := 0; i < b.N; i++ {
		netsim.Measure(link, profile)
	}
}

// --- E10: peak routing (request path under spike traffic)

func BenchmarkE10_PeakRouting(b *testing.B) {
	r := routing.NewRouter(routing.NumAddresses)
	node := nodeFunc(func(path string) (*cache.Object, httpserver.Outcome, error) {
		return &cache.Object{Key: cache.Key(path), Value: []byte("x")}, httpserver.OutcomeHit, nil
	})
	names := []string{"tokyo", "schaumburg", "columbus", "bethesda"}
	for _, n := range names {
		r.AddComplex(n, named{n, node}, map[routing.Region]int{routing.RegionJapan: 10, routing.RegionUS: 20})
	}
	if err := r.AdvertiseSpread(names, 10, 20); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := r.Request(routing.RegionJapan, "/home"); err != nil {
			b.Fatal(err)
		}
	}
}

type nodeFunc func(path string) (*cache.Object, httpserver.Outcome, error)

type named struct {
	name string
	fn   nodeFunc
}

func (n named) Name() string { return n.name }
func (n named) Serve(path string) (*cache.Object, httpserver.Outcome, error) {
	return n.fn(path)
}

// --- E12: failover path cost

func BenchmarkE12_Failover(b *testing.B) {
	healthy := named{"ok", func(path string) (*cache.Object, httpserver.Outcome, error) {
		return &cache.Object{Key: cache.Key(path), Value: []byte("x")}, httpserver.OutcomeHit, nil
	}}
	b.Run("HealthyPool", func(b *testing.B) {
		d := dispatch.New(dispatch.Config{Name: "nd", Nodes: []dispatch.Node{named{"a", healthy.fn}, named{"b", healthy.fn}}})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Serve("/p")
		}
	})
	b.Run("OneNodeDown", func(b *testing.B) {
		d := dispatch.New(dispatch.Config{Name: "nd", Nodes: []dispatch.Node{named{"a", healthy.fn}, named{"b", healthy.fn}, named{"c", healthy.fn}}})
		d.MarkDown("a")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Serve("/p")
		}
	})
}

// --- E14: one result update fanning out to ~100+ pages

func BenchmarkE14_UpdateFanout(b *testing.B) {
	st, engine, _ := buildStack(b, core.PolicyUpdateInPlace)
	ev := st.Events[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := st.RecordResult(ev,
			ev.Participants[i%len(ev.Participants)],
			ev.Participants[(i+1)%len(ev.Participants)],
			ev.Participants[(i+2)%len(ev.Participants)],
			fmt.Sprint(i))
		if err != nil {
			b.Fatal(err)
		}
		res := propagateLast(st, engine, tx)
		if res.Updated == 0 {
			b.Fatal("no fan-out")
		}
	}
}

// --- E15: MSIRP route computation and traffic shifting

func BenchmarkE15_MSIRP(b *testing.B) {
	r := routing.NewRouter(routing.NumAddresses)
	names := []string{"tokyo", "schaumburg", "columbus", "bethesda"}
	node := named{"n", func(path string) (*cache.Object, httpserver.Outcome, error) {
		return &cache.Object{Key: cache.Key(path)}, httpserver.OutcomeHit, nil
	}}
	for _, n := range names {
		r.AddComplex(n, named{n, node.fn}, map[routing.Region]int{routing.RegionUS: 10})
	}
	if err := r.AdvertiseSpread(names, 10, 20); err != nil {
		b.Fatal(err)
	}
	b.Run("Route", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Route(routing.RegionUS, routing.Address(i%12))
		}
	})
	b.Run("PrimaryShare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.PrimaryShare(routing.RegionUS, "tokyo")
		}
	})
}

// --- E16: full trigger pipeline latency (commit -> propagated)

func BenchmarkE16_TriggerPipeline(b *testing.B) {
	master := db.New("bench")
	graph := odg.New()
	c := cache.New("bench")
	var st *site.Site
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return st.Engine.Generate(key, version)
	}
	engine := core.NewEngine(graph, c, core.WithGenerator(gen))
	var err error
	st, err = site.Build(site.DefaultSpec(), master, engine)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.PrerenderAll(master.LSN(), func(o *cache.Object) { c.Put(o) }); err != nil {
		b.Fatal(err)
	}
	mon := trigger.New(trigger.Config{DB: master, Engine: engine},
		trigger.WithIndexer(st.Indexer), trigger.WithBatchWindow(0))
	if err := mon.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer mon.Shutdown(context.Background())
	ev := st.Events[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RecordPartial(ev, ev.Participants[i%len(ev.Participants)], fmt.Sprint(i)); err != nil {
			b.Fatal(err)
		}
		mon.Flush()
	}
}

// --- E15: incremental propagation — memoized assembly vs full re-render

// BenchmarkE15_IncrementalPropagation drives Olympic update bursts through
// the full trigger -> engine -> cache path twice: once with the memoized
// assembler (each changed fragment renders once per batch, containing pages
// splice cached bytes) and once in the full-re-render baseline where every
// Include recursively regenerates its fragment. renders/op and reuses/op
// expose the render-vs-reuse accounting alongside the wall-clock delta.
func BenchmarkE15_IncrementalPropagation(b *testing.B) {
	run := func(b *testing.B, fullReRender bool) {
		master := db.New("bench")
		graph := odg.New()
		c := cache.New("bench")
		var st *site.Site
		gen := func(key cache.Key, version int64) (*cache.Object, error) {
			return st.Engine.Generate(key, version)
		}
		engine := core.NewEngine(graph, c, core.WithGenerator(gen), core.WithParallelism(4))
		var err error
		st, err = site.Build(site.DefaultSpec(), master, engine)
		if err != nil {
			b.Fatal(err)
		}
		if fullReRender {
			st.Engine.SetFullReRender(true)
		} else {
			engine.SetAssembler(st.Engine)
		}
		if err := st.PrerenderAll(master.LSN(), func(o *cache.Object) { c.Put(o) }); err != nil {
			b.Fatal(err)
		}
		mon := trigger.New(trigger.Config{DB: master, Engine: engine},
			trigger.WithIndexer(st.Indexer), trigger.WithBatchWindow(0))
		if err := mon.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		defer mon.Shutdown(context.Background())
		r0, u0 := st.Engine.Accounting()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A final result changes the medal-standings fragment, which is
			// embedded across home/medals pages — the paper's canonical
			// one-update-many-pages burst.
			ev := st.Events[i%len(st.Events)]
			if _, err := st.RecordResult(ev, ev.Participants[0], ev.Participants[1],
				ev.Participants[2], fmt.Sprint(i)); err != nil {
				b.Fatal(err)
			}
			mon.Flush()
		}
		b.StopTimer()
		r1, u1 := st.Engine.Accounting()
		b.ReportMetric(float64(r1-r0)/float64(b.N), "renders/op")
		b.ReportMetric(float64(u1-u0)/float64(b.N), "reuses/op")
	}
	b.Run("assembled", func(b *testing.B) { run(b, false) })
	b.Run("full-rerender", func(b *testing.B) { run(b, true) })
}

// --- Ablations -----------------------------------------------------------

// Simple-ODG fast path vs general weighted traversal for the same fan-out.
func BenchmarkAblation_SimpleVsGeneralODG(b *testing.B) {
	build := func(weighted bool) *odg.Graph {
		g := odg.New()
		for s := 0; s < 100; s++ {
			src := odg.NodeID(fmt.Sprintf("db%d", s))
			for i := 0; i < 64; i++ {
				to := odg.NodeID(fmt.Sprintf("p%d-%d", s, i))
				if weighted {
					if err := g.AddWeightedEdge(src, to, 2); err != nil {
						b.Fatal(err)
					}
				} else if err := g.AddEdge(src, to); err != nil {
					b.Fatal(err)
				}
			}
		}
		return g
	}
	b.Run("Simple", func(b *testing.B) {
		g := build(false)
		if !g.IsSimple() {
			b.Fatal("expected simple graph")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Affected(odg.NodeID(fmt.Sprintf("db%d", i%100)))
		}
	})
	b.Run("General", func(b *testing.B) {
		g := build(true)
		if g.IsSimple() {
			b.Fatal("expected general graph")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Affected(odg.NodeID(fmt.Sprintf("db%d", i%100)))
		}
	})
}

// Update-in-place vs invalidate-then-regenerate-on-miss for one hot page.
func BenchmarkAblation_UpdateVsInvalidate(b *testing.B) {
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		return &cache.Object{Key: key, Value: make([]byte, 4096), Version: version}, nil
	}
	b.Run("UpdateInPlace", func(b *testing.B) {
		c := cache.New("c")
		g := odg.New()
		e := core.NewEngine(g, c, core.WithGenerator(gen))
		e.RegisterObject("/hot", []odg.NodeID{"db:row"})
		srv := httpserver.New("n", c, gen, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.OnChange(int64(i), "db:row")
			if _, out, _ := srv.Serve("/hot"); out != httpserver.OutcomeHit {
				b.Fatal("expected hit")
			}
		}
	})
	b.Run("InvalidateThenMiss", func(b *testing.B) {
		c := cache.New("c")
		g := odg.New()
		e := core.NewEngine(g, c, core.WithPolicy(core.PolicyInvalidate))
		e.RegisterObject("/hot", []odg.NodeID{"db:row"})
		srv := httpserver.New("n", c, gen, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.OnChange(int64(i), "db:row")
			if _, out, _ := srv.Serve("/hot"); out != httpserver.OutcomeMiss {
				b.Fatal("expected miss")
			}
		}
	})
}

// Per-transaction propagation vs batching 16 transactions per sweep.
func BenchmarkAblation_BatchedTriggers(b *testing.B) {
	setup := func() (*site.Site, *core.Engine) {
		st, e, _ := buildStack(b, core.PolicyUpdateInPlace)
		return st, e
	}
	b.Run("PerTransaction", func(b *testing.B) {
		st, e := setup()
		ev := st.Events[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 16; j++ {
				tx, err := st.RecordPartial(ev, ev.Participants[j%len(ev.Participants)], fmt.Sprint(i, j))
				if err != nil {
					b.Fatal(err)
				}
				propagateLast(st, e, tx)
			}
		}
	})
	b.Run("Batched16", func(b *testing.B) {
		st, e := setup()
		ev := st.Events[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var txs []db.Transaction
			for j := 0; j < 16; j++ {
				tx, err := st.RecordPartial(ev, ev.Participants[j%len(ev.Participants)], fmt.Sprint(i, j))
				if err != nil {
					b.Fatal(err)
				}
				txs = append(txs, tx)
			}
			// One propagation for the whole batch, deduped — what the
			// trigger monitor's window does.
			seen := map[odg.NodeID]struct{}{}
			var changed []odg.NodeID
			var lsn int64
			for _, tx := range txs {
				if tx.LSN > lsn {
					lsn = tx.LSN
				}
				for _, ch := range tx.Changes {
					for _, id := range st.Indexer(ch) {
						if _, ok := seen[id]; !ok {
							seen[id] = struct{}{}
							changed = append(changed, id)
						}
					}
				}
			}
			e.OnChange(lsn, changed...)
		}
	})
}

// Weighted staleness threshold: remediate every minor change vs defer until
// accumulated staleness crosses the threshold. The generator carries a
// realistic render cost (~20µs of CPU, a fragment-assembly page); with
// near-free renders the weighted Staleness pass itself would dominate and
// the threshold would show no saving.
func BenchmarkAblation_WeightThreshold(b *testing.B) {
	burn := httpserver.SpinOverhead(12000)
	gen := func(key cache.Key, version int64) (*cache.Object, error) {
		burn()
		return &cache.Object{Key: key, Value: make([]byte, 4096), Version: version}, nil
	}
	build := func(threshold float64) *core.Engine {
		c := cache.New("c")
		g := odg.New()
		opts := []core.Option{core.WithGenerator(gen)}
		if threshold > 0 {
			opts = append(opts, core.WithStalenessThreshold(threshold))
		}
		e := core.NewEngine(g, c, opts...)
		for i := 0; i < 50; i++ {
			key := cache.Key(fmt.Sprintf("/p%d", i))
			g.AddNode(odg.NodeID(key), odg.KindObject)
			if err := g.AddWeightedEdge("db:ticker", odg.NodeID(key), 1); err != nil {
				b.Fatal(err)
			}
			c.Put(&cache.Object{Key: key, Value: make([]byte, 4096)})
		}
		return e
	}
	b.Run("NoThreshold", func(b *testing.B) {
		e := build(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.OnChange(int64(i), "db:ticker")
		}
	})
	b.Run("Threshold4", func(b *testing.B) {
		e := build(4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.OnChange(int64(i), "db:ticker")
		}
	})
}

// Parallel regeneration (the paper's 8-way SMP rendering) vs sequential,
// with a deliberately slow generator standing in for heavy page assembly.
// The speedup scales with GOMAXPROCS: on a single-CPU machine the two
// variants run at parity (the workers only add scheduling overhead), on an
// 8-way SMP the parallel path approaches 8x — which is exactly why the
// paper put rendering on the SMP.
func BenchmarkAblation_ParallelRendering(b *testing.B) {
	slowGen := func(key cache.Key, version int64) (*cache.Object, error) {
		// ~20µs of real work per page.
		x := uint64(1)
		for i := 0; i < 12000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		if x == 0 {
			panic("unreachable")
		}
		return &cache.Object{Key: key, Value: make([]byte, 2048), Version: version}, nil
	}
	build := func(workers int) *core.Engine {
		c := cache.New("c")
		g := odg.New()
		opts := []core.Option{core.WithGenerator(slowGen)}
		if workers > 1 {
			opts = append(opts, core.WithParallelism(workers))
		}
		e := core.NewEngine(g, c, opts...)
		e.RegisterFragment("frag:m", []odg.NodeID{"db:row"})
		for i := 0; i < 128; i++ {
			e.RegisterObject(cache.Key(fmt.Sprintf("/p%d", i)), []odg.NodeID{"frag:m"})
		}
		return e
	}
	b.Run("Sequential", func(b *testing.B) {
		e := build(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := e.OnChange(int64(i), "db:row"); res.Updated != 129 {
				b.Fatalf("updated = %d", res.Updated)
			}
		}
	})
	b.Run("Workers8", func(b *testing.B) {
		e := build(8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := e.OnChange(int64(i), "db:row"); res.Updated != 129 {
				b.Fatalf("updated = %d", res.Updated)
			}
		}
	})
}

// Hybrid hot/cold policy vs regenerating everything: the paper regenerated
// hot pages eagerly; a hybrid engine skips eager regeneration of cold
// pages, trading a later on-demand miss for saved render CPU now.
func BenchmarkAblation_HybridHotCold(b *testing.B) {
	build := func(opts ...core.Option) (*core.Engine, *cache.Cache) {
		c := cache.New("c")
		g := odg.New()
		gen := func(key cache.Key, version int64) (*cache.Object, error) {
			return &cache.Object{Key: key, Value: make([]byte, 4096), Version: version}, nil
		}
		e := core.NewEngine(g, c, append([]core.Option{core.WithGenerator(gen)}, opts...)...)
		for i := 0; i < 100; i++ {
			key := cache.Key(fmt.Sprintf("/p%d", i))
			e.RegisterObject(key, []odg.NodeID{"db:row"})
			c.Put(&cache.Object{Key: key, Value: make([]byte, 4096)})
		}
		// 10 hot pages absorb the traffic.
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				c.Get(cache.Key(fmt.Sprintf("/p%d", i)))
			}
		}
		return e, c
	}
	b.Run("UpdateAll", func(b *testing.B) {
		e, _ := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.OnChange(int64(i), "db:row")
		}
	})
	b.Run("HybridHot10", func(b *testing.B) {
		var c *cache.Cache
		oracle := func(key cache.Key) bool { return c.HitCount(key) >= 5 }
		e, cc := build(core.WithPolicy(core.PolicyHybrid), core.WithHotOracle(oracle))
		c = cc
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.OnChange(int64(i), "db:row")
		}
	})
}
