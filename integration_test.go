// End-to-end integration: a compressed "day in the life" of the Nagano
// site, run against the real asynchronous deployment (master database,
// chained replication, per-complex trigger monitors, MSIRP routing) with
// workload-model traffic and access-log analysis — every subsystem of the
// repository touching every other.
package dupserve

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dupserve/internal/cache"
	"dupserve/internal/deploy"
	"dupserve/internal/httpserver"
	"dupserve/internal/routing"
	"dupserve/internal/site"
	"dupserve/internal/weblog"
	"dupserve/internal/workload"
)

func TestIntegrationDayInTheLife(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	spec := site.Spec{
		Sports: 3, EventsPerSport: 4, Athletes: 90, Countries: 10,
		NewsStories: 20, Days: 3, EventsPerAthlete: 1,
		Languages:   []string{"en", "ja"},
		Syndication: []string{"cbs"},
	}
	cfg := deploy.NaganoConfig(spec)
	for i := range cfg.Complexes {
		cfg.Complexes[i].ReplicationDelay = time.Millisecond
	}
	cfg.BatchWindow = 2 * time.Millisecond
	d, err := deploy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	if err := d.Prime(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	model := workload.New(workload.Config{Seed: 42, TotalHits: 5000}, d.MasterSite)
	rng := rand.New(rand.NewSource(42))
	var logBuf bytes.Buffer
	access := weblog.NewWriter(&logBuf)
	base := time.Date(1998, 2, 8, 0, 0, 0, 0, time.UTC)
	reqN := 0
	access.SetClock(func() time.Time { reqN++; return base.Add(time.Duration(reqN) * time.Second) })

	statics := d.MasterSite.Statics()
	served, errors := 0, 0
	// Interleave: a burst of traffic, then a result, repeatedly.
	events := d.MasterSite.Events
	for round := 0; round < len(events); round++ {
		for i := 0; i < 120; i++ {
			region := model.SampleRegion(rng)
			path := model.SamplePage(rng, 1, region)
			obj, outcome, _, err := d.Serve(region, path)
			if err != nil {
				errors++
				continue
			}
			served++
			status := 200
			if outcome == httpserver.OutcomeNotFound {
				status = 404
			}
			size := 0
			if obj != nil {
				size = len(obj.Value)
			}
			client := fmt.Sprintf("10.0.%d.%d", i%4, i%25)
			if err := access.Log(client, path, status, size); err != nil {
				t.Fatal(err)
			}
			// Dynamic pages must always hit; statics are statics.
			if _, isStatic := statics[path]; !isStatic && outcome != httpserver.OutcomeHit {
				t.Fatalf("round %d: %s from %s was a %v, want hit", round, path, region, outcome)
			}
		}
		ev := events[round]
		if _, err := d.MasterSite.RecordResult(ev, ev.Participants[0], ev.Participants[1], ev.Participants[2],
			fmt.Sprintf("%d.0", 200+round)); err != nil {
			t.Fatal(err)
		}
		if !d.WaitFresh(30 * time.Second) {
			t.Fatal("freshness timeout")
		}
	}
	if errors > 0 {
		t.Fatalf("%d routing errors", errors)
	}

	// Global cache behaviour: zero misses across all complexes, all nodes.
	agg := d.Stats()
	if agg.Misses != 0 {
		t.Fatalf("global misses = %d over %d served", agg.Misses, served)
	}
	if agg.Evictions != 0 {
		t.Fatalf("evictions = %d", agg.Evictions)
	}

	// Every event page reflects its final result at every complex.
	for _, ev := range events {
		page := "/en/sports/" + ev.Sport + "/" + ev.Key
		for _, cx := range d.Complexes() {
			c := cx.Cluster.Caches.Members()[0]
			obj, ok := c.Peek(cache.Key(page))
			if !ok {
				t.Fatalf("%s missing %s", cx.Name, page)
			}
			if !strings.Contains(string(obj.Value), ev.Participants[0]) {
				t.Fatalf("%s has stale %s", cx.Name, page)
			}
		}
	}

	// The syndication feed is fresh JSON everywhere.
	obj, outcome, _, err := d.Serve(routing.RegionUS, "/feed/cbs/"+events[0].Sport)
	if err != nil || outcome != httpserver.OutcomeHit {
		t.Fatalf("feed: %v %v", outcome, err)
	}
	if !bytes.Contains(obj.Value, []byte(events[0].Participants[0])) {
		t.Fatalf("feed stale: %s", obj.Value)
	}

	// Log analysis closes the loop: entries recorded for every request.
	if err := access.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := weblog.Analyze(&logBuf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != served {
		t.Fatalf("log entries = %d, served = %d", rep.Entries, served)
	}
	if len(rep.TopPages) == 0 || rep.Clients == 0 {
		t.Fatalf("report = %+v", rep)
	}
}
