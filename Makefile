GO ?= go

.PHONY: all build test race check chaos audit flight recovery smoke bench bench-overload bench-propagation bench-recovery bench-serve bench-wire compare-serve run

all: check

build:
	$(GO) build ./...

# Tests run with -shuffle=on so order dependencies cannot hide.
test:
	$(GO) test -shuffle=on ./...

# The whole module runs under the race detector — no package allowlist. The
# serve plane (striped cache, RCU dispatch, zero-alloc hit path) is lock-free
# or fine-grained by design, and every package is expected to be race-clean.
race:
	$(GO) test -race -shuffle=on ./...

# chaos runs the deterministic fault-injection tournament (every fault kind
# against a live deployment, asserting zero lost transactions, zero stale
# pages, and zero residual freshness-SLO violations) followed by the 5:1
# overload scenario (hits always admitted, staleness bounded by budget,
# sheds bounded, full reconvergence).
chaos:
	$(GO) run ./cmd/simulate -chaos -seed 1

# audit runs the standalone consistency audit: traffic under propagation,
# convergence, then a shadow-render sweep of every page on every complex
# asserting zero incoherent pages and a complete, minimal ODG.
audit:
	$(GO) run ./cmd/simulate -audit -seed 1

# flight drives the anomaly flight recorder through one of each trigger
# (SLO violation, monitor crash, shed, incoherent page) and prints the
# dump inventory plus the canonical-bytes digest.
flight:
	$(GO) run ./cmd/simulate -flight -seed 1

# recovery runs the deterministic node-recovery scenario: kill a node,
# commit under it, readmit it through the warmup and slow-start ramp, then
# flap it three times and assert the quarantine grows — with zero
# post-rejoin misses, zero LSN-floor violations, and a coherent audit.
recovery:
	$(GO) run ./cmd/simulate -recovery -seed 1

# smoke runs the multi-process deployment end to end on loopback: the
# olympicsd binary re-executes itself as two serving-node processes, the
# parent runs the master plane against them over TCP (log shipping, page
# pushes, remote serves), commits a result, and asserts the updated page
# is a cache hit with fresh bytes on every node.
smoke:
	$(GO) run ./cmd/olympicsd -role smoke -nodes 2

# bench-overload records serve-path throughput, p50/p99 latency, and
# hit/stale/shed rates at 1x, 3x, and 5x of estimated render capacity.
bench-overload:
	$(GO) run ./cmd/simulate -overload-bench BENCH_overload.json -seed 1

# bench-propagation records the incremental-propagation comparison: a seeded
# Olympic update-burst sequence through the trigger -> engine -> cache path
# with memoized fragment assembly versus the full-re-render baseline,
# including the render-vs-reuse accounting (renders_total must equal the
# planner's changed-fragment count; the run fails otherwise).
bench-propagation:
	$(GO) run ./cmd/simulate -propagation-bench BENCH_propagation.json -seed 1

# bench-recovery records the warm-vs-cold readmission comparison: MTTR and
# post-rejoin hit/miss counts for a warmup-gated rejoin against an
# empty-cache rejoin (the run fails unless warm beats cold).
bench-recovery:
	$(GO) run ./cmd/simulate -recovery-bench BENCH_recovery.json -seed 1

# bench-serve records the serve-path saturation benchmark: the full
# dispatcher -> node -> httpserver -> cache path under a Zipf hit/miss/stale
# mix and a pure-hit workload, across GOMAXPROCS 1/2/4/8, for the striped/
# RCU/zero-alloc path against the pre-overhaul baseline in the same run.
bench-serve:
	$(GO) run ./cmd/simulate -serve-bench BENCH_serve.json -seed 1998

# compare-serve re-measures the serve benchmark and fails on a material
# regression against the committed BENCH_serve.json (any hit-path alloc
# increase; >15% drop in throughput or speedup-vs-baseline).
compare-serve:
	$(GO) run ./cmd/simulate -serve-bench /tmp/BENCH_serve.fresh.json -seed 1998
	$(GO) run ./cmd/analyze -compare BENCH_serve.json -fresh /tmp/BENCH_serve.fresh.json

# bench-wire records the framed TCP transport's loopback figures: page-push
# throughput through the pooled, pipelined client and the RPC latency
# p50/p99 (the run fails on any call error or reconnect — loopback must be
# clean).
bench-wire:
	$(GO) run ./cmd/simulate -wire-bench BENCH_wire.json -seed 1

# check is the tier-1 gate: everything builds, vets clean, every test
# passes (shuffled), the whole module is race-clean, the chaos tournament
# converges, the consistency audit proves the plant coherent, the recovery
# scenario readmits a failed node without serving stale pages, the
# multi-process smoke proves the wire path against real child processes,
# and the serve benchmark shows no regression against the committed
# baseline.
check: build
	$(GO) vet ./...
	$(GO) test -shuffle=on ./...
	$(GO) test -race -shuffle=on ./...
	$(GO) run ./cmd/simulate -chaos -seed 1
	$(GO) run ./cmd/simulate -audit -seed 1
	$(GO) run ./cmd/simulate -recovery -seed 1
	$(GO) run ./cmd/olympicsd -role smoke -nodes 2
	$(MAKE) compare-serve

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

run:
	$(GO) run ./cmd/olympicsd -addr :8098 -tick 2s
