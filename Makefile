GO ?= go

# Packages with lock-free hot paths where a data race would corrupt the
# observability layer itself, plus the fault-injection and recovery layer
# whose whole point is concurrent crash/restart, plus the overload/admission
# path (limiter, degradation serving) which is exercised by many goroutines
# at once, plus the auditor whose Observe runs on every node's request path
# concurrently with sweeps, plus the serve-span/journal/flight-recorder
# layer whose collector is written from every request goroutine, plus the
# fragment assembler whose single-flight table and version floors are hit by
# parallel page-assembly workers, plus the dispatcher's probation state
# machine and the cluster/recovery node lifecycle (warmups race fails,
# advisor sweeps race serves), plus the wire transport whose pooled client
# demultiplexes concurrent RPCs against reconnects and partition drops;
# check runs them under the race detector.
RACE_PKGS = ./internal/stats ./internal/trace ./internal/trigger ./internal/core ./internal/cache ./internal/db ./internal/fault ./internal/deploy ./internal/overload ./internal/httpserver ./internal/audit ./internal/obs ./internal/fragment ./internal/dispatch ./internal/cluster ./internal/recovery ./internal/wire

.PHONY: all build test race check chaos audit flight recovery smoke bench bench-overload bench-propagation bench-recovery bench-wire run

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# chaos runs the deterministic fault-injection tournament (every fault kind
# against a live deployment, asserting zero lost transactions, zero stale
# pages, and zero residual freshness-SLO violations) followed by the 5:1
# overload scenario (hits always admitted, staleness bounded by budget,
# sheds bounded, full reconvergence).
chaos:
	$(GO) run ./cmd/simulate -chaos -seed 1

# audit runs the standalone consistency audit: traffic under propagation,
# convergence, then a shadow-render sweep of every page on every complex
# asserting zero incoherent pages and a complete, minimal ODG.
audit:
	$(GO) run ./cmd/simulate -audit -seed 1

# flight drives the anomaly flight recorder through one of each trigger
# (SLO violation, monitor crash, shed, incoherent page) and prints the
# dump inventory plus the canonical-bytes digest.
flight:
	$(GO) run ./cmd/simulate -flight -seed 1

# recovery runs the deterministic node-recovery scenario: kill a node,
# commit under it, readmit it through the warmup and slow-start ramp, then
# flap it three times and assert the quarantine grows — with zero
# post-rejoin misses, zero LSN-floor violations, and a coherent audit.
recovery:
	$(GO) run ./cmd/simulate -recovery -seed 1

# smoke runs the multi-process deployment end to end on loopback: the
# olympicsd binary re-executes itself as two serving-node processes, the
# parent runs the master plane against them over TCP (log shipping, page
# pushes, remote serves), commits a result, and asserts the updated page
# is a cache hit with fresh bytes on every node.
smoke:
	$(GO) run ./cmd/olympicsd -role smoke -nodes 2

# bench-overload records serve-path throughput, p50/p99 latency, and
# hit/stale/shed rates at 1x, 3x, and 5x of estimated render capacity.
bench-overload:
	$(GO) run ./cmd/simulate -overload-bench BENCH_overload.json -seed 1

# bench-propagation records the incremental-propagation comparison: a seeded
# Olympic update-burst sequence through the trigger -> engine -> cache path
# with memoized fragment assembly versus the full-re-render baseline,
# including the render-vs-reuse accounting (renders_total must equal the
# planner's changed-fragment count; the run fails otherwise).
bench-propagation:
	$(GO) run ./cmd/simulate -propagation-bench BENCH_propagation.json -seed 1

# bench-recovery records the warm-vs-cold readmission comparison: MTTR and
# post-rejoin hit/miss counts for a warmup-gated rejoin against an
# empty-cache rejoin (the run fails unless warm beats cold).
bench-recovery:
	$(GO) run ./cmd/simulate -recovery-bench BENCH_recovery.json -seed 1

# bench-wire records the framed TCP transport's loopback figures: page-push
# throughput through the pooled, pipelined client and the RPC latency
# p50/p99 (the run fails on any call error or reconnect — loopback must be
# clean).
bench-wire:
	$(GO) run ./cmd/simulate -wire-bench BENCH_wire.json -seed 1

# check is the tier-1 gate: everything builds, vets clean, every test
# passes, the propagation pipeline is race-clean, the chaos tournament
# converges, the consistency audit proves the plant coherent, the recovery
# scenario readmits a failed node without serving stale pages, and the
# multi-process smoke proves the wire path against real child processes.
check: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)
	$(GO) run ./cmd/simulate -chaos -seed 1
	$(GO) run ./cmd/simulate -audit -seed 1
	$(GO) run ./cmd/simulate -recovery -seed 1
	$(GO) run ./cmd/olympicsd -role smoke -nodes 2

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

run:
	$(GO) run ./cmd/olympicsd -addr :8098 -tick 2s
