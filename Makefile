GO ?= go

# Packages with lock-free hot paths where a data race would corrupt the
# observability layer itself; check runs them under the race detector.
RACE_PKGS = ./internal/stats ./internal/trace ./internal/trigger ./internal/core ./internal/cache ./internal/db

.PHONY: all build test race check bench run

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# check is the tier-1 gate: everything builds, every test passes, and the
# metric/trace pipeline is race-clean.
check: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

run:
	$(GO) run ./cmd/olympicsd -addr :8098 -tick 2s
